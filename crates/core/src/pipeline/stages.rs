//! The stage layer: each technique of the paper's round pipeline as an
//! explicit, single-implementation stage.
//!
//! Every stage is a thin, deterministic wrapper over the primitive the
//! execution planes already called — the point is not new math but a
//! single owner per technique: render ([`uwb_channel::CirSynthesizer`]),
//! detect ([`crate::detection::Detector`]), slot decode
//! ([`crate::SlotPlan::decode_slot`]), shape classify (the register
//! inverse map formerly private to the worldsim capacity scenario), and
//! TWR solve ([`crate::TwrTimestamps`] / Eq. 4). Floating-point
//! operation order and RNG draw discipline match the pre-refactor call
//! sites exactly, keeping every plane's output bit-identical.

use crate::assignment::CombinedScheme;
use crate::detection::Detector;
use crate::error::RangingError;
use crate::estimate::{concurrent_distance_with_rpm_m, TwrTimestamps};
use crate::pipeline::RoundContext;
use crate::rpm::SlotPlan;
use rand::Rng;
use std::collections::BTreeMap;
use uwb_channel::{Arrival, CirSynthesizer};
use uwb_radio::{Cir, Prf, TcPgDelay, SPEED_OF_LIGHT};

/// Stage 1 — CIR synthesis: renders arrival sets into accumulator
/// windows, the physics step standing in for the DW1000's accumulator
/// readout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenderStage {
    prf: Prf,
}

impl RenderStage {
    /// A render stage for the given pulse-repetition frequency.
    #[must_use]
    pub fn new(prf: Prf) -> Self {
        Self { prf }
    }

    /// The accumulator PRF rendered into.
    #[must_use]
    pub fn prf(&self) -> Prf {
        self.prf
    }

    /// Renders a window anchored at `window_start_s` with AWGN of the
    /// given sigma — the protocol-engine path (allocating; the engine
    /// keeps the returned CIR in its round outcome).
    pub fn render<R: Rng + ?Sized>(
        &self,
        arrivals: &[Arrival],
        window_start_s: f64,
        noise_sigma: f64,
        rng: &mut R,
    ) -> Cir {
        CirSynthesizer::new(self.prf)
            .with_window_start(window_start_s)
            .with_noise_sigma(noise_sigma)
            .render(arrivals, rng)
    }

    /// Renders into a reusable buffer with the default (zero) window
    /// start — the campaign-worker path. Bit-identical to
    /// [`RenderStage::render`] from the same RNG state.
    pub fn render_into<R: Rng + ?Sized>(
        &self,
        cir: &mut Cir,
        arrivals: &[Arrival],
        noise_sigma: f64,
        rng: &mut R,
    ) {
        CirSynthesizer::new(self.prf)
            .with_noise_sigma(noise_sigma)
            .render_into(cir, arrivals, rng);
    }

    /// Renders one CIR per arrival set into a reusable vector, noise
    /// drawn sequentially from the single `rng` — the batch producer
    /// pairing with [`DetectStage::detect_batch`]. Equivalent to a
    /// sequential [`RenderStage::render_into`] loop, bit for bit.
    pub fn render_batch_into<R: Rng + ?Sized>(
        &self,
        out: &mut Vec<Cir>,
        arrival_sets: &[&[Arrival]],
        noise_sigma: f64,
        rng: &mut R,
    ) {
        CirSynthesizer::new(self.prf)
            .with_noise_sigma(noise_sigma)
            .render_batch_into(out, arrival_sets, rng);
    }
}

/// Stage 2 — response detection (Sect. IV/VI): dispatches any
/// [`Detector`] through the round context's plans and buffers.
#[derive(Debug)]
pub struct DetectStage<D> {
    detector: D,
}

impl<D: Detector> DetectStage<D> {
    /// Wraps a detector.
    pub fn new(detector: D) -> Self {
        Self { detector }
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &D {
        &self.detector
    }

    /// Runs detection for up to `count` responses against the context's
    /// plans, buffers and backend selection.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Detector::detect_with`].
    pub fn detect(
        &self,
        ctx: &mut RoundContext,
        cir: &Cir,
        count: usize,
    ) -> Result<D::Output, RangingError> {
        self.detector.detect_with(ctx.detector_ctx(), cir, count)
    }

    /// Runs detection against the CIR most recently rendered into the
    /// context's own scratch buffer — the campaign/streaming hot path,
    /// where render and detect share one [`RoundContext`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Detector::detect_with`].
    pub fn detect_scratch(
        &self,
        ctx: &mut RoundContext,
        count: usize,
    ) -> Result<D::Output, RangingError> {
        let (detector_ctx, cir) = ctx.detect_parts();
        self.detector.detect_with(detector_ctx, cir, count)
    }

    /// Detects on every CIR in order through the shared context —
    /// exactly equivalent to per-item [`DetectStage::detect`] calls.
    ///
    /// # Errors
    ///
    /// The first per-CIR error aborts the batch.
    pub fn detect_batch(
        &self,
        ctx: &mut RoundContext,
        cirs: &[Cir],
        count: usize,
    ) -> Result<Vec<D::Output>, RangingError> {
        self.detector.detect_batch(ctx.detector_ctx(), cirs, count)
    }
}

/// Which event on the CIR timeline slot offsets are measured against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotReference {
    /// The anchor response as *observed* in the accumulator (the
    /// protocol-engine plane): offsets are `τ_i − τ_anchor` between
    /// detected peaks, so the anchor's delayed-TX truncation shifts
    /// every offset equally and cancels in the difference.
    ObservedAnchor,
    /// The *predicted* anchor arrival `t_poll + Δ + δ_a + 2·d_TWR/c`
    /// (the worldsim capacity plane): referencing the prediction rather
    /// than the observed arrival cancels the anchor's own delayed-TX
    /// truncation (up to −8 ns) and clock-drift error, which would
    /// otherwise shift every frame's residual and eat an eighth of the
    /// slot budget.
    PredictedAnchor,
}

/// Stage 3 — RPM slot decode (Sect. VII): maps arrival offsets to slot
/// indices against a configured anchor reference.
///
/// This is the workspace's single slot-decode implementation; both
/// anchor-reference conventions fold into it, and the arithmetic
/// delegates to [`SlotPlan::decode_slot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotDecodeStage {
    plan: SlotPlan,
    reference: SlotReference,
}

impl SlotDecodeStage {
    /// A decode stage over `plan` using the given anchor reference.
    #[must_use]
    pub fn new(plan: SlotPlan, reference: SlotReference) -> Self {
        Self { plan, reference }
    }

    /// The slot plan decoded against.
    #[must_use]
    pub fn plan(&self) -> &SlotPlan {
        &self.plan
    }

    /// The configured anchor reference.
    #[must_use]
    pub fn reference(&self) -> SlotReference {
        self.reference
    }

    /// The predicted anchor arrival `t_poll + Δ + δ_a + 2·d_TWR/c` on
    /// the initiator's timeline — the reference a
    /// [`SlotReference::PredictedAnchor`] stage measures offsets
    /// against. The `2·d_TWR/c` term uses the anchor's SS-TWR distance,
    /// whose delayed-TX truncation is the same one baked into the
    /// observed arrivals — so the truncation cancels in the offsets.
    ///
    /// # Errors
    ///
    /// [`RangingError`] when `anchor_slot` lies outside the plan.
    pub fn predicted_anchor_s(
        &self,
        poll_tx_s: f64,
        response_delay_s: f64,
        anchor_slot: usize,
        d_anchor_m: f64,
    ) -> Result<f64, RangingError> {
        debug_assert_eq!(self.reference, SlotReference::PredictedAnchor);
        let anchor_delay = self.plan.slot_delay_s(anchor_slot)?;
        Ok(poll_tx_s + response_delay_s + anchor_delay + 2.0 * d_anchor_m / SPEED_OF_LIGHT)
    }

    /// Decodes an arrival's slot from its offset against the anchor
    /// reference. Delegates to [`SlotPlan::decode_slot`]: `None` when
    /// the offset matches no slot's guard band.
    #[must_use]
    pub fn decode(&self, offset_s: f64, anchor_slot: usize, d_anchor_m: f64) -> Option<usize> {
        self.plan.decode_slot(offset_s, anchor_slot, d_anchor_m)
    }
}

/// Stage 4 — pulse-shape classification from an observed `TC_PGDELAY`
/// register (Sect. V, protocol-plane variant): the registers a scheme
/// spreads over are not contiguous, so classification needs the inverse
/// map. An optional misclassification probability models receiver-side
/// observation error.
///
/// The matched-filter-bank shape scoring inside
/// [`crate::detection::SearchSubtractDetector`] is the signal-level
/// classifier; this stage is its frame-level counterpart, formerly
/// private to the worldsim capacity scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeClassifyStage {
    /// Observed register → shape index.
    shape_of_register: BTreeMap<TcPgDelay, usize>,
    n_shapes: usize,
    misclass: f64,
}

impl ShapeClassifyStage {
    /// The classify stage for a scheme's shape assignment.
    #[must_use]
    pub fn new(scheme: &CombinedScheme) -> Self {
        Self {
            shape_of_register: scheme
                .shapes()
                .iter()
                .enumerate()
                .map(|(i, &reg)| (reg, i))
                .collect(),
            n_shapes: scheme.n_shapes(),
            misclass: 0.0,
        }
    }

    /// Sets the probability that a resolved shape is misclassified into
    /// the adjacent index (clamped to [0, 1]).
    #[must_use]
    pub fn with_misclass(mut self, p: f64) -> Self {
        self.misclass = p.clamp(0.0, 1.0);
        self
    }

    /// The configured misclassification probability.
    #[must_use]
    pub fn misclass(&self) -> f64 {
        self.misclass
    }

    /// Classifies an observed register into a shape index; `None` when
    /// no register was observed or it maps to no scheme shape.
    ///
    /// RNG discipline: the misclassification draw fires exactly when
    /// the register resolved — callers gating on an earlier stage (the
    /// slot decode) must call this only after that stage succeeded, so
    /// the stream stays identical to the fused decoder it replaced.
    pub fn classify<R: Rng + ?Sized>(
        &self,
        register: Option<TcPgDelay>,
        rng: &mut R,
    ) -> Option<usize> {
        let mut shape = *self.shape_of_register.get(&register?)?;
        if self.misclass > 0.0 && rng.random::<f64>() < self.misclass {
            shape = (shape + 1) % self.n_shapes;
        }
        Some(shape)
    }
}

/// Stage 5 — distance solve: the paper's Eq. 2 (SS-TWR) and Eq. 4
/// (CIR-relative, RPM-compensated), plus the reply-time reconstruction
/// the capacity plane uses for non-anchor frames. Pure delegation to
/// [`TwrTimestamps`] / [`concurrent_distance_with_rpm_m`] — the
/// workspace's single TWR-solve implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveStage;

impl SolveStage {
    /// SS-TWR anchor distance (Eq. 2).
    #[must_use]
    pub fn anchor_m(&self, timestamps: &TwrTimestamps) -> f64 {
        timestamps.distance_m()
    }

    /// Concurrent distance from CIR delays with RPM slot compensation
    /// (Eq. 4 extended, [`concurrent_distance_with_rpm_m`]).
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn concurrent_m(
        &self,
        d_twr_m: f64,
        tau_s: f64,
        anchor_tau_s: f64,
        slot: usize,
        anchor_slot: usize,
        slot_spacing_s: f64,
    ) -> f64 {
        concurrent_distance_with_rpm_m(
            d_twr_m,
            tau_s,
            anchor_tau_s,
            slot,
            anchor_slot,
            slot_spacing_s,
        )
    }

    /// Distance from a measured round trip and a *known* reply time
    /// (Eq. 2's core with the reply reconstructed from the decoded
    /// slot's delay — the capacity plane's non-anchor estimate).
    #[must_use]
    pub fn from_reply_m(&self, round_trip_s: f64, reply_s: f64) -> f64 {
        (round_trip_s - reply_s) / 2.0 * SPEED_OF_LIGHT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scheme(slots: usize, shapes: usize) -> CombinedScheme {
        CombinedScheme::new(SlotPlan::new(slots).unwrap(), shapes).unwrap()
    }

    #[test]
    fn render_stage_matches_direct_synthesizer_calls() {
        let arrivals = [Arrival {
            delay_s: 40e-9,
            amplitude: uwb_dsp::Complex64::new(0.8, 0.1),
            pulse: uwb_radio::PulseShape::from_config(&uwb_radio::RadioConfig::default()),
        }];
        let stage = RenderStage::new(Prf::Mhz64);
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let direct = CirSynthesizer::new(Prf::Mhz64)
            .with_window_start(10e-9)
            .with_noise_sigma(0.02)
            .render(&arrivals, &mut a);
        let staged = stage.render(&arrivals, 10e-9, 0.02, &mut b);
        assert_eq!(direct.taps(), staged.taps());

        let mut a = StdRng::seed_from_u64(6);
        let mut b = StdRng::seed_from_u64(6);
        let mut direct_buf = Cir::zeroed(Prf::Mhz64);
        let mut staged_buf = Cir::zeroed(Prf::Mhz64);
        CirSynthesizer::new(Prf::Mhz64)
            .with_noise_sigma(0.01)
            .render_into(&mut direct_buf, &arrivals, &mut a);
        stage.render_into(&mut staged_buf, &arrivals, 0.01, &mut b);
        assert_eq!(direct_buf.taps(), staged_buf.taps());
    }

    #[test]
    fn render_batch_equals_sequential_renders() {
        let pulse = uwb_radio::PulseShape::from_config(&uwb_radio::RadioConfig::default());
        let set_a = [Arrival {
            delay_s: 30e-9,
            amplitude: uwb_dsp::Complex64::new(1.0, 0.0),
            pulse,
        }];
        let set_b = [Arrival {
            delay_s: 55e-9,
            amplitude: uwb_dsp::Complex64::new(0.5, 0.2),
            pulse,
        }];
        let stage = RenderStage::new(Prf::Mhz64);
        let mut batch = Vec::new();
        let mut rng = StdRng::seed_from_u64(9);
        stage.render_batch_into(&mut batch, &[&set_a, &set_b], 0.01, &mut rng);
        let mut rng = StdRng::seed_from_u64(9);
        let mut seq_a = Cir::zeroed(Prf::Mhz64);
        let mut seq_b = Cir::zeroed(Prf::Mhz64);
        stage.render_into(&mut seq_a, &set_a, 0.01, &mut rng);
        stage.render_into(&mut seq_b, &set_b, 0.01, &mut rng);
        assert_eq!(batch[0].taps(), seq_a.taps());
        assert_eq!(batch[1].taps(), seq_b.taps());
    }

    #[test]
    fn slot_decode_matches_plan_primitive() {
        let plan = SlotPlan::new(4).unwrap();
        let stage = SlotDecodeStage::new(plan, SlotReference::ObservedAnchor);
        for slot in 0..4 {
            let offset = (slot as f64) * plan.slot_spacing_s();
            assert_eq!(
                stage.decode(offset, 0, 3.0),
                plan.decode_slot(offset, 0, 3.0),
                "slot {slot}"
            );
        }
        assert_eq!(stage.decode(1.0, 0, 3.0), plan.decode_slot(1.0, 0, 3.0));
    }

    #[test]
    fn predicted_anchor_reproduces_worldsim_expression() {
        let plan = SlotPlan::new(15).unwrap();
        let stage = SlotDecodeStage::new(plan, SlotReference::PredictedAnchor);
        let (poll_tx_s, delta, slot, d) = (1.25e-3, 290e-6, 7, 8.2);
        let by_hand =
            poll_tx_s + delta + plan.slot_delay_s(slot).unwrap() + 2.0 * d / SPEED_OF_LIGHT;
        assert_eq!(
            stage.predicted_anchor_s(poll_tx_s, delta, slot, d).unwrap(),
            by_hand
        );
        assert!(stage.predicted_anchor_s(0.0, delta, 99, d).is_err());
    }

    #[test]
    fn shape_classify_inverts_the_scheme_registers() {
        let scheme = scheme(1, 3);
        let stage = ShapeClassifyStage::new(&scheme);
        let mut rng = StdRng::seed_from_u64(1);
        for (i, &reg) in scheme.shapes().iter().enumerate() {
            assert_eq!(stage.classify(Some(reg), &mut rng), Some(i));
        }
        assert_eq!(stage.classify(None, &mut rng), None);
    }

    #[test]
    fn misclass_draw_fires_only_on_resolved_shapes() {
        let scheme = scheme(1, 3);
        let stage = ShapeClassifyStage::new(&scheme).with_misclass(1.0);
        let mut rng = StdRng::seed_from_u64(2);
        // Unresolved register: no draw consumed…
        assert_eq!(stage.classify(None, &mut rng), None);
        let mut untouched = StdRng::seed_from_u64(2);
        assert_eq!(rng.random::<u64>(), untouched.random::<u64>());
        // …resolved register at p = 1: always the adjacent shape.
        let reg0 = scheme.shapes()[0];
        assert_eq!(stage.classify(Some(reg0), &mut rng), Some(1));
    }

    #[test]
    fn solve_stage_delegates_to_estimate() {
        let solve = SolveStage;
        assert_eq!(
            solve.concurrent_m(3.0, 50e-9, 10e-9, 2, 0, 250e-9),
            concurrent_distance_with_rpm_m(3.0, 50e-9, 10e-9, 2, 0, 250e-9)
        );
        let (rt, reply) = (600e-6, 590e-6);
        assert_eq!(
            solve.from_reply_m(rt, reply),
            (rt - reply) / 2.0 * SPEED_OF_LIGHT
        );
    }
}
