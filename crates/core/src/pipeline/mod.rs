//! The layered round pipeline: one implementation of the paper's
//! CIR-synthesis → detection → slot-decode → shape-classify → TWR-solve
//! chain, shared by every execution plane.
//!
//! Before this module the chain existed three times with drifting
//! copies: inside [`crate::ConcurrentEngine`] (the protocol plane), in
//! the Fig. 7 campaign worker (`repro-bench`), and in the worldsim
//! capacity scenario — which re-derived slot decoding with its own
//! predicted-anchor-arrival correction. The pipeline splits the chain
//! into three layers so new drivers (a ranging service, a localization
//! frontend) plug in without a fourth copy:
//!
//! | Layer | Types | Role |
//! |---|---|---|
//! | stage | [`RenderStage`], [`DetectStage`], [`SlotDecodeStage`], [`ShapeClassifyStage`], [`SolveStage`] | each paper technique exactly once |
//! | context | [`RoundContext`] | every per-round resource: detection plans/buffers, CIR scratch, fault stream, telemetry span parent |
//! | driver | [`RangingPipeline`] (streaming), `uwb_campaign::Campaign::run_with_context` (batch), worldsim epochs | scheduling only — no algorithm code |
//!
//! Determinism contract: the stages delegate to the exact primitives
//! the planes called before ([`uwb_channel::CirSynthesizer`],
//! [`crate::detection::Detector`], [`crate::SlotPlan::decode_slot`],
//! [`crate::TwrTimestamps`]) with the same floating-point operation
//! order and RNG draw discipline, so routing a plane through the
//! pipeline changes no output bit.

mod context;
mod stages;
mod streaming;

pub use context::RoundContext;
pub use stages::{
    DetectStage, RenderStage, ShapeClassifyStage, SlotDecodeStage, SlotReference, SolveStage,
};
pub use streaming::{RangingPipeline, RoundProgram};
