//! The streaming driver: feed rounds one at a time through a long-lived
//! warmed [`RoundContext`].
//!
//! The batch planes (campaign chunks, worldsim epochs) amortize context
//! construction across a worker's whole slice. A deployed ranging
//! service sees rounds arrive *one at a time* — this driver gives that
//! shape the same warmed-context hot path: the first round pays plan
//! construction, every later round is allocation-free, and because
//! context reuse is bit-identical to fresh contexts (the plan-cache
//! contract), a stream fed the per-round RNGs of a batch campaign
//! reproduces the batch output byte for byte.

use crate::pipeline::RoundContext;
use rand::rngs::StdRng;

/// One round of work expressed over the pipeline layers: what a driver
/// schedules.
///
/// Implementations run the stage chain against the provided context and
/// the round's dedicated RNG. The RNG is concrete (`StdRng`, the
/// workspace-wide trial RNG type) so programs stay dyn-compatible and a
/// driver can box heterogeneous programs.
///
/// The same program runs unchanged under every driver: the campaign
/// plane calls `run_round` from its worker closure (one context per
/// worker, rounds in chunk order), a [`RangingPipeline`] calls it on a
/// single long-lived context. Determinism is the program's obligation:
/// derive all randomness from `rng` and key any fault stream by
/// `round`, and the output is a pure function of `(round, rng seed)` —
/// independent of driver, thread count and arrival order.
pub trait RoundProgram {
    /// The per-round result.
    type Output;

    /// Runs one round against the context.
    fn run_round(&self, ctx: &mut RoundContext, round: u64, rng: &mut StdRng) -> Self::Output;
}

/// The streaming driver: a [`RoundProgram`] bound to one long-lived
/// [`RoundContext`].
///
/// ```
/// use rand::rngs::StdRng;
/// use concurrent_ranging::pipeline::{RangingPipeline, RoundContext, RoundProgram};
///
/// struct Echo;
/// impl RoundProgram for Echo {
///     type Output = u64;
///     fn run_round(&self, _ctx: &mut RoundContext, round: u64, _rng: &mut StdRng) -> u64 {
///         round * 2
///     }
/// }
///
/// let mut pipeline = RangingPipeline::new(Echo);
/// let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(0);
/// assert_eq!(pipeline.feed_round(3, &mut rng), 6);
/// assert_eq!(pipeline.rounds_fed(), 1);
/// ```
#[derive(Debug)]
pub struct RangingPipeline<P> {
    program: P,
    ctx: RoundContext,
    rounds_fed: u64,
}

impl<P: RoundProgram> RangingPipeline<P> {
    /// A pipeline with a fresh default context (backend from the
    /// `UWB_DSP_BACKEND` environment knob).
    pub fn new(program: P) -> Self {
        Self::with_context(program, RoundContext::new())
    }

    /// A pipeline over an explicitly prepared context (pinned backend,
    /// pre-installed fault stream, telemetry span parent).
    pub fn with_context(program: P, ctx: RoundContext) -> Self {
        Self {
            program,
            ctx,
            rounds_fed: 0,
        }
    }

    /// Feeds one round through the warmed context and returns its
    /// result.
    ///
    /// Callers own round numbering and RNG derivation — to mirror a
    /// batch campaign, pass the campaign's round index and its
    /// per-trial RNG (`uwb_campaign::trial_rng(seed, round)`) and the
    /// stream is byte-identical to the batch output at any thread
    /// count.
    pub fn feed_round(&mut self, round: u64, rng: &mut StdRng) -> P::Output {
        self.rounds_fed += 1;
        self.program.run_round(&mut self.ctx, round, rng)
    }

    /// The program driven by this pipeline.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// The long-lived context (e.g. to install a fault stream or span
    /// parent between rounds).
    pub fn context_mut(&mut self) -> &mut RoundContext {
        &mut self.ctx
    }

    /// The long-lived context, read-only.
    pub fn context(&self) -> &RoundContext {
        &self.ctx
    }

    /// How many rounds this pipeline has processed.
    #[must_use]
    pub fn rounds_fed(&self) -> u64 {
        self.rounds_fed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// A program that consumes RNG state, to check the driver threads
    /// the caller's RNG through untouched.
    struct Draw;
    impl RoundProgram for Draw {
        type Output = f64;
        fn run_round(&self, _ctx: &mut RoundContext, round: u64, rng: &mut StdRng) -> f64 {
            round as f64 + rng.random::<f64>()
        }
    }

    #[test]
    fn feed_round_counts_and_passes_rng_through() {
        let mut pipeline = RangingPipeline::new(Draw);
        let mut rng = StdRng::seed_from_u64(11);
        let mut reference = StdRng::seed_from_u64(11);
        let out = pipeline.feed_round(4, &mut rng);
        assert_eq!(out, 4.0 + reference.random::<f64>());
        assert_eq!(pipeline.rounds_fed(), 1);
        let _ = pipeline.feed_round(5, &mut rng);
        assert_eq!(pipeline.rounds_fed(), 2);
    }

    #[test]
    fn per_round_rngs_make_streams_order_independent_per_round() {
        // With one RNG per round (the campaign discipline), feeding the
        // same round twice into two pipelines yields identical results
        // regardless of what else each pipeline processed.
        let mut a = RangingPipeline::new(Draw);
        let mut b = RangingPipeline::new(Draw);
        let _ = a.feed_round(0, &mut StdRng::seed_from_u64(0));
        let ra = a.feed_round(9, &mut StdRng::seed_from_u64(9));
        let rb = b.feed_round(9, &mut StdRng::seed_from_u64(9));
        assert_eq!(ra, rb);
    }
}
