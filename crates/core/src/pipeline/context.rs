//! The context layer: one [`RoundContext`] owning every per-round
//! resource, replacing the ad-hoc threading of the same four concerns
//! (DSP plans, CIR scratch, fault stream, telemetry parent) that each
//! execution plane used to do differently.

use crate::detection::DetectorContext;
use uwb_dsp::DspBackend;
use uwb_netsim::FaultInjector;
use uwb_radio::{Cir, Prf};

/// Everything one pipeline pass needs besides the round's inputs.
///
/// A context is built once per worker (campaign plane) or once per
/// stream ([`crate::pipeline::RangingPipeline`]) and reused across
/// rounds: the embedded [`DetectorContext`] carries the FFT plan cache,
/// kernel spectra and scratch buffers of the selected DSP backend, and
/// the CIR scratch is re-rendered in place — so every round after the
/// first runs the hot path allocation-free. Reuse is bit-identical to a
/// fresh context by the plan-cache contract.
///
/// The deterministic work-counter profiler needs no handle here: its
/// scope tree is thread-local and travels with whichever thread drives
/// the context (the campaign engine brackets chunks with
/// `uwb_obs::profile::scoped`; a streaming driver accumulates into the
/// ambient scope like any inline run).
#[derive(Debug)]
pub struct RoundContext {
    detector: DetectorContext,
    cir: Cir,
    injector: Option<FaultInjector>,
    span_parent: Option<u64>,
}

impl RoundContext {
    /// A fresh context for PRF-64 CIRs, with the DSP backend selected
    /// from the `UWB_DSP_BACKEND` environment knob.
    #[must_use]
    pub fn new() -> Self {
        Self::with_detector(DetectorContext::new())
    }

    /// A fresh context pinned to an explicit DSP backend (tests and
    /// backend-comparison harnesses; production paths use the
    /// environment knob).
    #[must_use]
    pub fn with_backend(backend: DspBackend) -> Self {
        Self::with_detector(DetectorContext::with_backend(backend))
    }

    fn with_detector(detector: DetectorContext) -> Self {
        Self {
            detector,
            cir: Cir::zeroed(Prf::Mhz64),
            injector: None,
            span_parent: None,
        }
    }

    /// The DSP backend this context dispatches to.
    #[must_use]
    pub fn backend(&self) -> DspBackend {
        self.detector.backend()
    }

    /// The detection plans/buffers — what [`crate::detection::Detector`]
    /// implementations run against.
    pub fn detector_ctx(&mut self) -> &mut DetectorContext {
        &mut self.detector
    }

    /// The reusable CIR scratch buffer (render target).
    pub fn cir_mut(&mut self) -> &mut Cir {
        &mut self.cir
    }

    /// Splits the context into its detection and CIR halves, for stages
    /// that need the rendered CIR and the detector context at once.
    pub fn detect_parts(&mut self) -> (&mut DetectorContext, &mut Cir) {
        (&mut self.detector, &mut self.cir)
    }

    /// Installs the per-round receiver-side fault stream (SNR dips, CIR
    /// tap corruption). Decision streams are keyed by round inside the
    /// injector, so one injector serves the context's whole lifetime.
    pub fn install_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// The receiver-side fault stream, when one is installed.
    pub fn injector_mut(&mut self) -> Option<&mut FaultInjector> {
        self.injector.as_mut()
    }

    /// True when a receiver-side fault stream is installed.
    #[must_use]
    pub fn has_injector(&self) -> bool {
        self.injector.is_some()
    }

    /// Sets the telemetry span this context's rounds hang under (a
    /// `uwb_obs::span_id`), so drivers that emit causal span chains can
    /// parent per-round events without threading the id separately.
    pub fn set_span_parent(&mut self, span: Option<u64>) {
        self.span_parent = span;
    }

    /// The telemetry span parent, when the driver set one.
    #[must_use]
    pub fn span_parent(&self) -> Option<u64> {
        self.span_parent
    }
}

impl Default for RoundContext {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_context_has_no_injector_or_span() {
        let mut ctx = RoundContext::new();
        assert!(!ctx.has_injector());
        assert!(ctx.injector_mut().is_none());
        assert_eq!(ctx.span_parent(), None);
        ctx.set_span_parent(Some(7));
        assert_eq!(ctx.span_parent(), Some(7));
    }

    #[test]
    fn backend_pin_is_respected() {
        let ctx = RoundContext::with_backend(DspBackend::ScalarF64);
        assert_eq!(ctx.backend(), DspBackend::ScalarF64);
    }

    #[test]
    fn split_borrows_both_halves() {
        let mut ctx = RoundContext::new();
        let (det, cir) = ctx.detect_parts();
        let _ = det;
        assert!(cir.taps().iter().all(|t| t.re == 0.0 && t.im == 0.0));
    }
}
