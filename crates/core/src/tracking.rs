//! Position tracking: a constant-velocity Kalman filter over the position
//! fixes that concurrent ranging + multilateration produce — the mobile
//! half of the paper's envisioned "efficient cooperative or anchor-based
//! localization system" (Sect. IX).
//!
//! Each concurrent round yields one [`crate::PositionFix`]; the tracker
//! fuses them across time, smoothing the per-fix noise (dominated by the
//! TX-grid quantization of non-anchor ranges) and bridging rounds where
//! too few anchors resolved.

use uwb_channel::Point2;

/// State of the constant-velocity tracker: position and velocity in 2-D.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackState {
    /// Estimated position, meters.
    pub position: Point2,
    /// Estimated velocity, meters/second.
    pub velocity: (f64, f64),
    /// Position variance (per axis), m².
    pub position_var: f64,
    /// Velocity variance (per axis), m²/s².
    pub velocity_var: f64,
}

/// A 2-D constant-velocity Kalman filter with scalar (isotropic)
/// covariance per block — sufficient for fusing symmetric multilateration
/// fixes, and free of matrix dependencies.
///
/// # Examples
///
/// ```
/// use concurrent_ranging::PositionTracker;
/// use uwb_channel::Point2;
///
/// let mut tracker = PositionTracker::new(0.5, 0.05);
/// tracker.update(Point2::new(1.0, 1.0), 0.0);
/// tracker.update(Point2::new(1.5, 1.0), 0.5);
/// let state = tracker.state().unwrap();
/// assert!(state.position.x > 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct PositionTracker {
    /// (state, position↔velocity covariance, timestamp).
    state: Option<(TrackState, f64, f64)>,
    /// Process noise: white-acceleration intensity, (m/s²)².
    accel_noise: f64,
    /// Measurement noise: per-axis fix standard deviation, meters.
    fix_sigma_m: f64,
}

impl PositionTracker {
    /// Creates a tracker.
    ///
    /// `accel_sigma` is the expected acceleration magnitude (m/s²) of the
    /// tracked node — walking people are ≈0.5; `fix_sigma_m` the per-axis
    /// standard deviation of a single multilateration fix.
    ///
    /// # Panics
    ///
    /// Panics on non-positive or non-finite parameters.
    pub fn new(accel_sigma: f64, fix_sigma_m: f64) -> Self {
        assert!(
            accel_sigma.is_finite() && accel_sigma > 0.0,
            "invalid accel sigma {accel_sigma}"
        );
        assert!(
            fix_sigma_m.is_finite() && fix_sigma_m > 0.0,
            "invalid fix sigma {fix_sigma_m}"
        );
        Self {
            state: None,
            accel_noise: accel_sigma * accel_sigma,
            fix_sigma_m,
        }
    }

    /// The current estimate, if any fix has been ingested.
    pub fn state(&self) -> Option<&TrackState> {
        self.state.as_ref().map(|(s, _, _)| s)
    }

    /// Predicts the position at a future time without ingesting a fix.
    pub fn predict_at(&self, time_s: f64) -> Option<Point2> {
        let (s, _, t0) = self.state.as_ref()?;
        let dt = (time_s - t0).max(0.0);
        Some(Point2::new(
            s.position.x + s.velocity.0 * dt,
            s.position.y + s.velocity.1 * dt,
        ))
    }

    /// Ingests a position fix taken at `time_s` (monotonic, seconds).
    ///
    /// # Panics
    ///
    /// Panics on non-finite inputs.
    pub fn update(&mut self, fix: Point2, time_s: f64) {
        assert!(
            fix.x.is_finite() && fix.y.is_finite() && time_s.is_finite(),
            "invalid fix ({}, {}) at {time_s}",
            fix.x,
            fix.y
        );
        let r = self.fix_sigma_m * self.fix_sigma_m;
        match self.state.take() {
            None => {
                self.state = Some((
                    TrackState {
                        position: fix,
                        velocity: (0.0, 0.0),
                        position_var: r,
                        velocity_var: 1.0, // weakly known initial velocity
                    },
                    0.0, // no position↔velocity correlation yet
                    time_s,
                ));
            }
            Some((s, p_pv, t0)) => {
                let dt = (time_s - t0).max(1e-6);
                let q = self.accel_noise;
                // Predict (constant velocity; white-acceleration process
                // noise integrated over dt). Full per-axis 2×2 covariance
                // [p_pp, p_pv; p_pv, p_vv] propagated exactly.
                let px = s.position.x + s.velocity.0 * dt;
                let py = s.position.y + s.velocity.1 * dt;
                let p_pp = s.position_var
                    + 2.0 * dt * p_pv
                    + dt * dt * s.velocity_var
                    + q * dt.powi(4) / 4.0;
                let p_pv_pred = p_pv + dt * s.velocity_var + q * dt.powi(3) / 2.0;
                let p_vv = s.velocity_var + q * dt * dt;

                // Kalman update with the position measurement.
                let gain_denom = p_pp + r;
                let k_pos = p_pp / gain_denom;
                let k_vel = p_pv_pred / gain_denom;
                let nx = px + k_pos * (fix.x - px);
                let ny = py + k_pos * (fix.y - py);
                let vx = s.velocity.0 + k_vel * (fix.x - px);
                let vy = s.velocity.1 + k_vel * (fix.y - py);

                self.state = Some((
                    TrackState {
                        position: Point2::new(nx, ny),
                        velocity: (vx, vy),
                        position_var: (1.0 - k_pos) * p_pp,
                        velocity_var: p_vv - k_vel * p_pv_pred,
                    },
                    (1.0 - k_pos) * p_pv_pred,
                    time_s,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uwb_channel::random;

    #[test]
    fn first_fix_initializes_state() {
        let mut t = PositionTracker::new(0.5, 0.1);
        assert!(t.state().is_none());
        t.update(Point2::new(2.0, 3.0), 0.0);
        let s = t.state().unwrap();
        assert_eq!(s.position, Point2::new(2.0, 3.0));
        assert_eq!(s.velocity, (0.0, 0.0));
    }

    #[test]
    fn stationary_target_converges_below_fix_noise() {
        let truth = Point2::new(5.0, 5.0);
        let sigma = 0.3;
        let mut tracker = PositionTracker::new(0.2, sigma);
        let mut rng = StdRng::seed_from_u64(1);
        let mut errors = Vec::new();
        for k in 0..60 {
            let fix = Point2::new(
                truth.x + random::normal(&mut rng, 0.0, sigma),
                truth.y + random::normal(&mut rng, 0.0, sigma),
            );
            tracker.update(fix, k as f64 * 0.5);
            errors.push(tracker.state().unwrap().position.distance_to(truth));
        }
        // The filtered error over the last 20 steps beats the raw σ.
        let tail = &errors[40..];
        let mean_err = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(mean_err < sigma * 0.8, "mean error {mean_err}");
    }

    #[test]
    fn tracks_constant_velocity_motion() {
        // 1 m/s along x, noisy fixes every 0.5 s: velocity is recovered
        // and prediction extrapolates.
        let sigma = 0.1;
        let mut tracker = PositionTracker::new(0.3, sigma);
        let mut rng = StdRng::seed_from_u64(2);
        for k in 0..50 {
            let t = k as f64 * 0.5;
            let fix = Point2::new(
                1.0 * t + random::normal(&mut rng, 0.0, sigma),
                2.0 + random::normal(&mut rng, 0.0, sigma),
            );
            tracker.update(fix, t);
        }
        let s = tracker.state().unwrap();
        assert!((s.velocity.0 - 1.0).abs() < 0.15, "vx {}", s.velocity.0);
        assert!(s.velocity.1.abs() < 0.15, "vy {}", s.velocity.1);
        // Predict one second ahead.
        let predicted = tracker.predict_at(25.5).unwrap();
        assert!(
            (predicted.x - 25.5).abs() < 0.4,
            "predicted x {}",
            predicted.x
        );
    }

    #[test]
    fn prediction_without_state_is_none() {
        let t = PositionTracker::new(0.5, 0.1);
        assert!(t.predict_at(1.0).is_none());
    }

    #[test]
    fn variance_shrinks_with_updates() {
        let mut t = PositionTracker::new(0.2, 0.5);
        t.update(Point2::new(0.0, 0.0), 0.0);
        let v0 = t.state().unwrap().position_var;
        for k in 1..10 {
            t.update(Point2::new(0.0, 0.0), k as f64 * 0.2);
        }
        assert!(t.state().unwrap().position_var < v0);
    }

    #[test]
    #[should_panic(expected = "invalid fix sigma")]
    fn rejects_bad_parameters() {
        let _ = PositionTracker::new(0.5, 0.0);
    }
}
