//! Inline storage for per-template identification scores.
//!
//! Every [`crate::detection::DetectedResponse`] carries one score per
//! template in the bank (`α̂_{k,i}`, Sect. V of the paper). Banks are
//! tiny — the paper's Fig. 5 set has four shapes — so storing the scores
//! in a heap `Vec` made each detected response cost an allocation on the
//! hot path. [`ShapeScores`] keeps up to [`ShapeScores::INLINE_CAP`]
//! scores inline and only spills to the heap for unusually large banks.

use std::ops::Deref;

/// Identification scores for every template in the bank, stored inline
/// for the common small-bank case.
#[derive(Debug, Clone)]
pub struct ShapeScores {
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    Inline {
        buf: [f64; ShapeScores::INLINE_CAP],
        len: u8,
    },
    Heap(Vec<f64>),
}

impl ShapeScores {
    /// Scores up to this count live inline (no heap allocation). Twice
    /// the paper's four-shape bank.
    pub const INLINE_CAP: usize = 8;

    /// An empty score list.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Inner::Inline {
                buf: [0.0; Self::INLINE_CAP],
                len: 0,
            },
        }
    }

    /// Scores copied from a slice.
    #[must_use]
    pub fn from_slice(scores: &[f64]) -> Self {
        scores.iter().copied().collect()
    }

    /// Appends a score, spilling to the heap past the inline capacity.
    pub fn push(&mut self, score: f64) {
        match &mut self.inner {
            Inner::Inline { buf, len } => {
                if (*len as usize) < Self::INLINE_CAP {
                    buf[*len as usize] = score;
                    *len += 1;
                } else {
                    let mut vec = buf.to_vec();
                    vec.push(score);
                    self.inner = Inner::Heap(vec);
                }
            }
            Inner::Heap(vec) => vec.push(score),
        }
    }

    /// The scores as a freshly allocated `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<f64> {
        self.as_slice().to_vec()
    }

    /// The scores as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        match &self.inner {
            Inner::Inline { buf, len } => &buf[..*len as usize],
            Inner::Heap(vec) => vec,
        }
    }
}

impl Default for ShapeScores {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for ShapeScores {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl PartialEq for ShapeScores {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl FromIterator<f64> for ShapeScores {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut scores = Self::new();
        for score in iter {
            scores.push(score);
        }
        scores
    }
}

impl From<Vec<f64>> for ShapeScores {
    fn from(scores: Vec<f64>) -> Self {
        Self::from_slice(&scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_up_to_capacity() {
        let scores: ShapeScores = (0..ShapeScores::INLINE_CAP).map(|i| i as f64).collect();
        assert!(matches!(scores.inner, Inner::Inline { .. }));
        assert_eq!(scores.len(), ShapeScores::INLINE_CAP);
        assert_eq!(scores[3], 3.0);
    }

    #[test]
    fn spills_to_heap_past_capacity() {
        let n = ShapeScores::INLINE_CAP + 3;
        let scores: ShapeScores = (0..n).map(|i| i as f64).collect();
        assert!(matches!(scores.inner, Inner::Heap(_)));
        assert_eq!(scores.len(), n);
        assert_eq!(scores[n - 1], (n - 1) as f64);
    }

    #[test]
    fn equality_ignores_representation() {
        let inline = ShapeScores::from_slice(&[1.0, 2.0]);
        let heap = ShapeScores {
            inner: Inner::Heap(vec![1.0, 2.0]),
        };
        assert_eq!(inline, heap);
        assert_ne!(inline, ShapeScores::from_slice(&[1.0]));
    }

    #[test]
    fn slice_views_and_conversions() {
        let scores = ShapeScores::from(vec![0.9, 0.3, 0.45]);
        assert_eq!(scores.as_slice(), &[0.9, 0.3, 0.45]);
        assert_eq!(scores.to_vec(), vec![0.9, 0.3, 0.45]);
        assert_eq!(scores.iter().count(), 3);
        assert!(!scores.is_empty());
        assert!(ShapeScores::new().is_empty());
    }
}
