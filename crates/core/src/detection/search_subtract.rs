//! The search-and-subtract response detector — the paper's Sect. IV
//! algorithm (after Falsi et al.), extended with the pulse-shape template
//! bank of Sect. V.
//!
//! Per iteration: run a matched filter for every candidate pulse shape,
//! take the global maximum across shapes and delays (the strongest
//! remaining path), estimate its complex amplitude, and subtract the
//! fitted pulse from the residual. Repeat until `N − 1` responses are
//! found, then sort by delay. Identification is free: the shape whose
//! filter scored highest *is* the responder's pulse shape.
//!
//! The detector is amplitude-independent by construction — it never
//! compares against absolute power bounds, addressing the paper's
//! challenge IV.

use crate::detection::context::DetectorContext;
use crate::detection::shape_scores::ShapeScores;
use crate::detection::templates::DetectionTemplate;
use crate::detection::DetectedResponse;
use crate::error::RangingError;
use uwb_dsp::{parabolic_interpolation, DspBackend, Kernels};
use uwb_radio::Cir;

/// Configuration of the search-and-subtract detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchSubtractConfig {
    /// FFT upsampling factor applied to the raw CIR (step 1 of the
    /// algorithm). 1 disables upsampling.
    pub upsample: usize,
    /// Refine peak positions to sub-sample precision with parabolic
    /// interpolation before subtracting (improves subtraction residuals).
    pub refine: bool,
    /// SAGE-style joint refinement passes after the greedy search: each
    /// pass re-estimates every response with all *others* subtracted,
    /// which untangles the biased estimates the greedy pass produces for
    /// overlapping pulses (successive interference cancellation with
    /// re-estimation, à la Fleury et al.). 0 reproduces the paper's plain
    /// algorithm.
    pub refinement_passes: usize,
    /// Capture the intermediate signals in [`DetectionDiagnostics`]
    /// (Fig. 4 stages, residual matched-filter magnitudes). Disable on
    /// allocation-sensitive hot paths that only consume `responses`;
    /// the detected responses themselves are unaffected.
    pub capture_diagnostics: bool,
}

impl Default for SearchSubtractConfig {
    fn default() -> Self {
        Self {
            upsample: 8,
            refine: true,
            refinement_passes: 1,
            capture_diagnostics: true,
        }
    }
}

impl SearchSubtractConfig {
    /// The paper's plain Sect. IV algorithm: greedy search-and-subtract
    /// with no joint refinement.
    pub fn paper() -> Self {
        Self {
            refinement_passes: 0,
            ..Self::default()
        }
    }
}

/// Diagnostics captured during a detection run, used to regenerate the
/// paper's Fig. 4 (CIR → matched filter → subtraction stages).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DetectionDiagnostics {
    /// Upsampled CIR magnitude before detection.
    pub upsampled_magnitude: Vec<f64>,
    /// Matched-filter magnitude of the *first* iteration, per template.
    pub first_mf_magnitude: Vec<Vec<f64>>,
    /// Residual matched-filter magnitude (best template) after each
    /// subtraction.
    pub residual_mf_magnitude: Vec<Vec<f64>>,
}

impl DetectionDiagnostics {
    /// Streaming statistics over the post-subtraction residual energies,
    /// one observation per iteration — the summary the observability
    /// layer reports instead of keeping bespoke detection counters (the
    /// accumulator type is shared with the campaign engine).
    #[must_use]
    pub fn residual_energy_stats(&self) -> uwb_obs::ScalarStats {
        let mut stats = uwb_obs::ScalarStats::new();
        for residual in &self.residual_mf_magnitude {
            stats.record(residual.iter().map(|m| m * m).sum());
        }
        stats
    }
}

/// Result of a detection run.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionOutcome {
    /// Detected responses, sorted by ascending delay (step 7).
    pub responses: Vec<DetectedResponse>,
    /// Detection sample period (CIR period / upsampling factor).
    pub sample_period_s: f64,
    /// Captured intermediate signals.
    pub diagnostics: DetectionDiagnostics,
}

/// The search-and-subtract detector.
///
/// # Examples
///
/// ```
/// use concurrent_ranging::detection::{SearchSubtractConfig, SearchSubtractDetector};
/// use uwb_radio::{Channel, TcPgDelay};
///
/// let detector = SearchSubtractDetector::from_registers(
///     &[TcPgDelay::DEFAULT],
///     Channel::Ch7,
///     SearchSubtractConfig::default(),
/// )?;
/// assert_eq!(detector.template_count(), 1);
/// # Ok::<(), concurrent_ranging::RangingError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SearchSubtractDetector {
    templates: Vec<DetectionTemplate>,
    config: SearchSubtractConfig,
}

impl SearchSubtractDetector {
    /// Builds a detector from prepared templates.
    ///
    /// # Errors
    ///
    /// Returns [`RangingError::EmptyTemplateBank`] for an empty bank and
    /// [`RangingError::InvalidUpsampling`] for a zero upsampling factor.
    pub fn new(
        templates: Vec<DetectionTemplate>,
        config: SearchSubtractConfig,
    ) -> Result<Self, RangingError> {
        if templates.is_empty() {
            return Err(RangingError::EmptyTemplateBank);
        }
        if config.upsample == 0 {
            return Err(RangingError::InvalidUpsampling { factor: 0 });
        }
        Ok(Self { templates, config })
    }

    /// Builds a detector with templates for the given register values on a
    /// channel, sampled at the upsampled CIR rate.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SearchSubtractDetector::new`].
    pub fn from_registers(
        registers: &[uwb_radio::TcPgDelay],
        channel: uwb_radio::Channel,
        config: SearchSubtractConfig,
    ) -> Result<Self, RangingError> {
        if config.upsample == 0 {
            return Err(RangingError::InvalidUpsampling { factor: 0 });
        }
        let period = uwb_radio::CIR_SAMPLE_PERIOD_S / config.upsample as f64;
        let templates = crate::detection::templates::template_bank(registers, channel, period);
        Self::new(templates, config)
    }

    /// Number of pulse-shape templates in the bank (`N_PS`).
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// The configuration.
    pub fn config(&self) -> &SearchSubtractConfig {
        &self.config
    }

    /// Runs detection for the `count` strongest responses in the CIR.
    ///
    /// Convenience wrapper around [`SearchSubtractDetector::detect_with`]
    /// that builds a throwaway [`DetectorContext`] per call. Hot callers
    /// should hold a context and call `detect_with` instead.
    ///
    /// # Errors
    ///
    /// - [`RangingError::NoResponsesRequested`] when `count` is zero.
    /// - [`RangingError::Dsp`] if the CIR cannot be upsampled (cannot occur
    ///   for valid [`Cir`] buffers).
    pub fn detect(&self, cir: &Cir, count: usize) -> Result<DetectionOutcome, RangingError> {
        let mut ctx = DetectorContext::new();
        self.detect_with(&mut ctx, cir, count)
    }

    /// Runs detection reusing the plans and working buffers in `ctx`.
    /// Bit-identical to [`SearchSubtractDetector::detect`]; in steady
    /// state the search loop itself allocates nothing (the returned
    /// outcome owns its `responses` vector, and diagnostics are captured
    /// only when [`SearchSubtractConfig::capture_diagnostics`] is set).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SearchSubtractDetector::detect`].
    pub fn detect_with(
        &self,
        ctx: &mut DetectorContext,
        cir: &Cir,
        count: usize,
    ) -> Result<DetectionOutcome, RangingError> {
        let _work_scope = uwb_obs::profile::scope("detect");
        uwb_obs::timed("detect", || self.detect_inner(ctx, cir, count))
    }

    fn detect_inner(
        &self,
        ctx: &mut DetectorContext,
        cir: &Cir,
        count: usize,
    ) -> Result<DetectionOutcome, RangingError> {
        if count == 0 {
            return Err(RangingError::NoResponsesRequested);
        }
        uwb_obs::counter("detect.calls", 1);
        let sample_period_s = cir.sample_period_s() / self.config.upsample as f64;
        let DetectorContext {
            dsp,
            residual,
            mags,
            best_mf,
            scores,
            best_scores,
        } = ctx;
        let capture = self.config.capture_diagnostics;

        // Step 1: upsample via FFT for a smoother signal (dispatched to
        // the context's DSP backend).
        dsp.upsample_into(cir.taps(), self.config.upsample, residual)?;
        let mut diagnostics = DetectionDiagnostics::default();
        if capture {
            diagnostics.upsampled_magnitude = residual.iter().map(|z| z.abs()).collect();
        }

        let mut responses = Vec::with_capacity(count);
        for iteration in 0..count {
            // Steps 2–3: matched filter per template; global maximum across
            // shapes and delays marks the strongest path. The kernel fuses
            // convolution and magnitudes so non-default backends never
            // materialize complex output they would immediately collapse.
            let mut best: Option<(usize, usize, f64)> = None; // (template, index, magnitude)
            for (ti, template) in self.templates.iter().enumerate() {
                dsp.matched_filter_mags_into(template.filter(), residual, mags)?;
                if capture && iteration == 0 {
                    diagnostics.first_mf_magnitude.push(mags.clone());
                }
                if let Some((idx, val)) = uwb_dsp::argmax(mags) {
                    if best.is_none_or(|(_, _, b)| val > b) {
                        best = Some((ti, idx, val));
                        // The winner's magnitudes park in `best_mf`; the
                        // displaced buffer is recycled for the next template.
                        std::mem::swap(mags, best_mf);
                    }
                }
            }
            let Some((ti, idx, _)) = best else { break };
            // Deterministic work accounting; deliberately independent of
            // both the trace recorder and `capture_diagnostics`, so work
            // totals are invariant to every observability toggle.
            uwb_obs::profile::work("detect.iteration", 1);
            let template = &self.templates[ti];

            // Optional sub-sample refinement of the peak position.
            let idx_frac = if self.config.refine {
                parabolic_interpolation(best_mf, idx)
            } else {
                idx as f64
            };
            let tau_s = template.center_delay_s(idx_frac);

            // Sect. V: identification scores for every template at this
            // delay, *before* subtraction.
            let shape_scores: ShapeScores = self
                .templates
                .iter()
                .map(|t| t.score_at(residual, tau_s))
                .collect();
            let shape_index = argmax_f64(&shape_scores).unwrap_or(ti);

            // Step 4: amplitude of the strongest path (projection onto
            // the shifted pulse) — estimated and subtracted with the SAME
            // template the response is recorded under, so that a later
            // refinement pass can add exactly what was removed.
            let chosen = &self.templates[shape_index];
            let amplitude = chosen.amplitude_at(residual, tau_s);

            // Step 5: subtract the estimated response from the residual.
            chosen.subtract(residual, tau_s, amplitude);
            if uwb_obs::enabled() {
                uwb_obs::counter("detect.iterations", 1);
                uwb_obs::event("detect.iter", || {
                    vec![
                        ("iteration", iteration.into()),
                        ("peak_index", idx.into()),
                        ("tau_s", tau_s.into()),
                        ("amplitude", amplitude.abs().into()),
                        ("template", ti.into()),
                        ("shape", shape_index.into()),
                        (
                            "residual_energy",
                            residual
                                .iter()
                                .map(|z| {
                                    let m = z.abs();
                                    m * m
                                })
                                .sum::<f64>()
                                .into(),
                        ),
                        ("shape_scores", shape_scores.to_vec().into()),
                    ]
                });
            }
            if capture {
                diagnostics
                    .residual_mf_magnitude
                    .push(residual.iter().map(|z| z.abs()).collect());
            }

            responses.push(DetectedResponse {
                tau_s,
                amplitude,
                shape_index,
                shape_scores,
            });
        }

        // Joint refinement: re-estimate each response with all others
        // removed, fixing the biased fits the greedy pass leaves on
        // overlapping pulses. The re-search scores at integer grid
        // delays, so non-default backends correlate against the
        // pre-sampled template (equal to the analytic score up to
        // rounding); the scalar backend keeps the bit-identical
        // analytic path.
        let grid_scores = dsp.backend() != DspBackend::ScalarF64;
        for _ in 0..self.config.refinement_passes {
            for response in responses.iter_mut() {
                let old = response.clone();
                // Add the current estimate back into the residual.
                self.templates[old.shape_index].subtract(residual, old.tau_s, -old.amplitude);

                // Local re-search around the previous delay, at the fine
                // sample grid, over every template.
                let window_s = self.templates[old.shape_index].pulse().main_lobe_s();
                let lo = ((old.tau_s - window_s) / sample_period_s).floor().max(0.0) as usize;
                let hi = (((old.tau_s + window_s) / sample_period_s).ceil() as usize)
                    .min(residual.len().saturating_sub(1));
                let mut best: Option<(usize, usize, f64)> = None;
                for (ti, template) in self.templates.iter().enumerate() {
                    if grid_scores {
                        template.score_grid_into(residual, lo, hi, scores);
                    } else {
                        scores.clear();
                        scores.extend(
                            (lo..=hi)
                                .map(|l| template.score_at(residual, l as f64 * sample_period_s)),
                        );
                    }
                    if let Some((idx, val)) = uwb_dsp::argmax(scores) {
                        if best.is_none_or(|(_, _, b)| val > b) {
                            best = Some((ti, idx, val));
                            std::mem::swap(scores, best_scores);
                        }
                    }
                }
                let Some((ti, idx, _)) = best else {
                    // Degenerate window; restore the old estimate.
                    self.templates[old.shape_index].subtract(residual, old.tau_s, old.amplitude);
                    continue;
                };
                let idx_frac = if self.config.refine {
                    parabolic_interpolation(best_scores, idx)
                } else {
                    idx as f64
                };
                let tau_s = (lo as f64 + idx_frac) * sample_period_s;
                let shape_scores: ShapeScores = self
                    .templates
                    .iter()
                    .map(|t| t.score_at(residual, tau_s))
                    .collect();
                let shape_index = argmax_f64(&shape_scores).unwrap_or(ti);
                let amplitude = self.templates[shape_index].amplitude_at(residual, tau_s);
                self.templates[shape_index].subtract(residual, tau_s, amplitude);
                *response = DetectedResponse {
                    tau_s,
                    amplitude,
                    shape_index,
                    shape_scores,
                };
            }
        }

        // Step 7: arrange responses in ascending delay order.
        responses.sort_by(|a, b| a.tau_s.partial_cmp(&b.tau_s).unwrap());

        Ok(DetectionOutcome {
            responses,
            sample_period_s,
            diagnostics,
        })
    }
}

fn argmax_f64(values: &[f64]) -> Option<usize> {
    uwb_dsp::argmax(values).map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uwb_channel::{Arrival, CirSynthesizer};
    use uwb_dsp::Complex64;
    use uwb_radio::{Channel, Prf, PulseShape, RadioConfig, TcPgDelay};

    fn default_pulse() -> PulseShape {
        PulseShape::from_config(&RadioConfig::default())
    }

    fn detector(n_shapes: usize) -> SearchSubtractDetector {
        SearchSubtractDetector::from_registers(
            &TcPgDelay::spread(n_shapes).unwrap(),
            Channel::Ch7,
            SearchSubtractConfig::default(),
        )
        .unwrap()
    }

    fn render(arrivals: &[Arrival], noise: f64, seed: u64) -> Cir {
        let mut rng = StdRng::seed_from_u64(seed);
        CirSynthesizer::new(Prf::Mhz64)
            .with_noise_sigma(noise)
            .render(arrivals, &mut rng)
    }

    fn arrival(delay_ns: f64, amp: f64, phase: f64) -> Arrival {
        Arrival {
            delay_s: delay_ns * 1e-9,
            amplitude: Complex64::from_polar(amp, phase),
            pulse: default_pulse(),
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(
            SearchSubtractDetector::new(vec![], SearchSubtractConfig::default()),
            Err(RangingError::EmptyTemplateBank)
        ));
        let bad = SearchSubtractConfig {
            upsample: 0,
            ..SearchSubtractConfig::default()
        };
        assert!(matches!(
            SearchSubtractDetector::from_registers(&[TcPgDelay::DEFAULT], Channel::Ch7, bad),
            Err(RangingError::InvalidUpsampling { factor: 0 })
        ));
        let d = detector(1);
        let cir = render(&[], 0.0, 0);
        assert!(matches!(
            d.detect(&cir, 0),
            Err(RangingError::NoResponsesRequested)
        ));
    }

    #[test]
    fn detects_single_clean_pulse_precisely() {
        let d = detector(1);
        let tau_ns = 213.7;
        let cir = render(&[arrival(tau_ns, 1.0, 0.9)], 0.0, 1);
        let out = d.detect(&cir, 1).unwrap();
        assert_eq!(out.responses.len(), 1);
        let err_ps = (out.responses[0].tau_s - tau_ns * 1e-9).abs() * 1e12;
        assert!(err_ps < 30.0, "delay error {err_ps} ps");
        assert!((out.responses[0].amplitude.abs() - 1.0).abs() < 0.02);
    }

    #[test]
    fn detects_three_well_separated_responses_like_fig4() {
        // The paper's Fig. 4: responders at 3/6/10 m → CIR offsets of
        // 2·Δd/c: 0, 20, 46.7 ns after the first response.
        let d = detector(1);
        let base = 100.0;
        let delays = [base, base + 20.0, base + 46.7];
        let amps = [1.0, 0.6, 0.35];
        let arrivals: Vec<Arrival> = delays
            .iter()
            .zip(amps)
            .map(|(&t, a)| arrival(t, a, 0.3 * t))
            .collect();
        let cir = render(&arrivals, 0.004, 2);
        let out = d.detect(&cir, 3).unwrap();
        assert_eq!(out.responses.len(), 3);
        for (resp, &true_ns) in out.responses.iter().zip(&delays) {
            let err_ns = (resp.tau_s * 1e9 - true_ns).abs();
            assert!(err_ns < 0.2, "delay error {err_ns} ns for {true_ns}");
        }
        // Sorted ascending (step 7).
        assert!(out.responses[0].tau_s < out.responses[1].tau_s);
        assert!(out.responses[1].tau_s < out.responses[2].tau_s);
    }

    #[test]
    fn detection_is_amplitude_independent() {
        // Challenge IV: a weak direct path among strong responses must
        // still be found — no absolute power bound involved.
        let d = detector(1);
        let arrivals = vec![
            arrival(150.0, 1.0, 0.0),
            arrival(350.0, 0.02, 1.0), // 34 dB weaker
        ];
        let cir = render(&arrivals, 0.001, 3);
        let out = d.detect(&cir, 2).unwrap();
        assert_eq!(out.responses.len(), 2);
        let tau2_ns = out.responses[1].tau_s * 1e9;
        assert!(
            (tau2_ns - 350.0).abs() < 0.5,
            "weak response at {tau2_ns} ns"
        );
    }

    #[test]
    fn resolves_overlapping_responses() {
        // Sect. VI: two responders at the same distance — responses offset
        // by a fraction of the pulse width must still be separated.
        let d = detector(1);
        let arrivals = vec![
            arrival(200.0, 1.0, 0.0),
            arrival(203.0, 0.8, 2.0), // 3 ns apart: overlapping pulses
        ];
        let cir = render(&arrivals, 0.002, 4);
        let out = d.detect(&cir, 2).unwrap();
        assert_eq!(out.responses.len(), 2);
        let t1 = out.responses[0].tau_s * 1e9;
        let t2 = out.responses[1].tau_s * 1e9;
        assert!((t1 - 200.0).abs() < 1.0, "t1 {t1}");
        assert!((t2 - 203.0).abs() < 1.0, "t2 {t2}");
    }

    #[test]
    fn identifies_pulse_shapes_of_two_responders() {
        // Sect. V / Fig. 6: responder 1 with the default shape, responder 2
        // with 0xE6 — both recovered with correct shape indices.
        let bank = TcPgDelay::paper_figure5();
        let d = SearchSubtractDetector::from_registers(
            &[bank[0], bank[1], bank[2]],
            Channel::Ch7,
            SearchSubtractConfig::default(),
        )
        .unwrap();
        let s1 = PulseShape::from_register(bank[0], Channel::Ch7);
        let s3 = PulseShape::from_register(bank[2], Channel::Ch7);
        let arrivals = vec![
            Arrival {
                delay_s: 120e-9,
                amplitude: Complex64::from_polar(1.0, 0.4),
                pulse: s1,
            },
            Arrival {
                delay_s: 160e-9,
                amplitude: Complex64::from_polar(0.7, 1.9),
                pulse: s3,
            },
        ];
        let cir = render(&arrivals, 0.003, 5);
        let out = d.detect(&cir, 2).unwrap();
        assert_eq!(out.responses.len(), 2);
        assert_eq!(out.responses[0].shape_index, 0, "responder 1 shape");
        assert_eq!(out.responses[1].shape_index, 2, "responder 2 shape");
    }

    #[test]
    fn diagnostics_capture_detection_stages() {
        let d = detector(2);
        let cir = render(
            &[arrival(100.0, 1.0, 0.0), arrival(140.0, 0.5, 1.0)],
            0.002,
            6,
        );
        let out = d.detect(&cir, 2).unwrap();
        assert_eq!(out.diagnostics.upsampled_magnitude.len(), 1016 * 8);
        assert_eq!(out.diagnostics.first_mf_magnitude.len(), 2);
        assert_eq!(out.diagnostics.residual_mf_magnitude.len(), 2);
        // Residual energy decreases monotonically across subtractions.
        let energy = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>();
        let e0 = energy(&out.diagnostics.upsampled_magnitude);
        let e1 = energy(&out.diagnostics.residual_mf_magnitude[0]);
        let e2 = energy(&out.diagnostics.residual_mf_magnitude[1]);
        assert!(e1 < e0);
        assert!(e2 < e1);
    }

    #[test]
    fn without_refinement_still_detects() {
        let d = SearchSubtractDetector::from_registers(
            &[TcPgDelay::DEFAULT],
            Channel::Ch7,
            SearchSubtractConfig {
                upsample: 4,
                refine: false,
                refinement_passes: 0,
                capture_diagnostics: true,
            },
        )
        .unwrap();
        let cir = render(&[arrival(300.0, 1.0, 0.0)], 0.001, 7);
        let out = d.detect(&cir, 1).unwrap();
        assert_eq!(out.responses.len(), 1);
        assert!((out.responses[0].tau_s * 1e9 - 300.0).abs() < 0.3);
    }

    #[test]
    fn reused_context_is_bit_identical_to_fresh_detection() {
        // The campaign determinism contract: one worker context reused
        // across many trials must give exactly the outputs of per-call
        // fresh state — PartialEq on the outcomes, no tolerance.
        let d = detector(3);
        let mut ctx = DetectorContext::new();
        for seed in 0..4u64 {
            let cir = render(
                &[
                    arrival(120.0 + 15.0 * seed as f64, 1.0, 0.3),
                    arrival(170.0, 0.5, 1.1),
                ],
                0.003,
                seed,
            );
            let fresh = d.detect(&cir, 2).unwrap();
            let reused = d.detect_with(&mut ctx, &cir, 2).unwrap();
            assert_eq!(fresh, reused, "seed {seed}");
        }
    }

    #[test]
    fn diagnostics_capture_can_be_disabled_without_changing_responses() {
        let with = detector(2);
        let without = SearchSubtractDetector::from_registers(
            &TcPgDelay::spread(2).unwrap(),
            Channel::Ch7,
            SearchSubtractConfig {
                capture_diagnostics: false,
                ..SearchSubtractConfig::default()
            },
        )
        .unwrap();
        let cir = render(
            &[arrival(100.0, 1.0, 0.0), arrival(140.0, 0.5, 1.0)],
            0.002,
            11,
        );
        let full = with.detect(&cir, 2).unwrap();
        let lean = without.detect(&cir, 2).unwrap();
        assert_eq!(full.responses, lean.responses);
        assert_eq!(full.sample_period_s, lean.sample_period_s);
        assert!(lean.diagnostics.upsampled_magnitude.is_empty());
        assert!(lean.diagnostics.first_mf_magnitude.is_empty());
        assert!(lean.diagnostics.residual_mf_magnitude.is_empty());
        assert!(!full.diagnostics.residual_mf_magnitude.is_empty());
    }
}
