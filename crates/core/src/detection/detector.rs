//! The unifying [`Detector`] trait: one interface over the paper's
//! proposed detector ([`SearchSubtractDetector`]) and the
//! threshold-crossing baseline ([`ThresholdDetector`]).
//!
//! Before the redesign each detector exposed its own inherent
//! `detect`/`detect_with` pair with structurally identical contracts;
//! callers that compared the two (the Fig. 7 experiment, ablations)
//! had to be written twice. The trait captures the shared contract —
//! including the batched [`Detector::detect_batch`] entry point that
//! pairs with [`uwb_channel::CirSynthesizer::render_batch`]-style
//! producers — while each detector keeps its own `Output` type
//! (search-and-subtract returns a full [`DetectionOutcome`] with
//! diagnostics; the baseline returns the bare responses, faithfully
//! reflecting that it *can* come up short).
//!
//! The inherent methods keep their exact names and signatures, so the
//! trait is purely additive: existing call sites resolve to the
//! inherent impls as before, and generic code opts in with a
//! `D: Detector` bound.

use crate::detection::context::DetectorContext;
use crate::detection::search_subtract::{DetectionOutcome, SearchSubtractDetector};
use crate::detection::threshold::ThresholdDetector;
use crate::detection::DetectedResponse;
use crate::error::RangingError;
use uwb_radio::Cir;

/// Common interface of the response detectors.
///
/// # Examples
///
/// Compare both detectors through one generic helper:
///
/// ```
/// use concurrent_ranging::detection::{
///     Detector, DetectorContext, SearchSubtractConfig, SearchSubtractDetector,
///     ThresholdConfig, ThresholdDetector,
/// };
/// use uwb_radio::{Channel, TcPgDelay};
///
/// fn run<D: Detector>(d: &D, cirs: &[uwb_radio::Cir]) -> Vec<D::Output> {
///     let mut ctx = DetectorContext::new();
///     d.detect_batch(&mut ctx, cirs, 2).expect("valid CIRs")
/// }
///
/// let ss = SearchSubtractDetector::from_registers(
///     &[TcPgDelay::DEFAULT],
///     Channel::Ch7,
///     SearchSubtractConfig::default(),
/// )?;
/// let th = ThresholdDetector::new(ThresholdConfig::default())?;
/// # let _ = (run::<SearchSubtractDetector> as fn(_, _) -> _, ss, th);
/// # Ok::<(), concurrent_ranging::RangingError>(())
/// ```
pub trait Detector {
    /// What one detection run produces.
    type Output;

    /// Runs detection for up to `count` responses, reusing the plans,
    /// buffers and backend selection in `ctx`.
    ///
    /// # Errors
    ///
    /// [`RangingError::NoResponsesRequested`] when `count` is zero;
    /// detector-specific conditions otherwise.
    fn detect_with(
        &self,
        ctx: &mut DetectorContext,
        cir: &Cir,
        count: usize,
    ) -> Result<Self::Output, RangingError>;

    /// Convenience wrapper building a throwaway [`DetectorContext`]
    /// (backend from the environment). Hot callers should hold a
    /// context and use [`Detector::detect_with`] or
    /// [`Detector::detect_batch`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Detector::detect_with`].
    fn detect(&self, cir: &Cir, count: usize) -> Result<Self::Output, RangingError> {
        let mut ctx = DetectorContext::new();
        self.detect_with(&mut ctx, cir, count)
    }

    /// Detects on every CIR in `cirs`, in order, through one shared
    /// context — so plan caches, kernel spectra and scratch warm up
    /// once and every subsequent CIR runs allocation-free.
    ///
    /// The default implementation is the sequential loop and is
    /// **exactly equivalent** to calling [`Detector::detect_with`] per
    /// CIR with the same context: implementors that override it (e.g.
    /// to block transforms across the batch) must preserve per-item
    /// results bit for bit on the default backend.
    ///
    /// # Errors
    ///
    /// The first per-CIR error aborts the batch.
    fn detect_batch(
        &self,
        ctx: &mut DetectorContext,
        cirs: &[Cir],
        count: usize,
    ) -> Result<Vec<Self::Output>, RangingError> {
        cirs.iter()
            .map(|cir| self.detect_with(ctx, cir, count))
            .collect()
    }
}

impl Detector for SearchSubtractDetector {
    type Output = DetectionOutcome;

    fn detect_with(
        &self,
        ctx: &mut DetectorContext,
        cir: &Cir,
        count: usize,
    ) -> Result<DetectionOutcome, RangingError> {
        SearchSubtractDetector::detect_with(self, ctx, cir, count)
    }
}

impl Detector for ThresholdDetector {
    type Output = Vec<DetectedResponse>;

    fn detect_with(
        &self,
        ctx: &mut DetectorContext,
        cir: &Cir,
        count: usize,
    ) -> Result<Vec<DetectedResponse>, RangingError> {
        ThresholdDetector::detect_with(self, ctx, cir, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::{SearchSubtractConfig, ThresholdConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uwb_channel::{Arrival, CirSynthesizer};
    use uwb_dsp::{Complex64, DspBackend};
    use uwb_radio::{Channel, Prf, PulseShape, RadioConfig, TcPgDelay};

    fn render_batch(n: usize, base_seed: u64) -> Vec<Cir> {
        (0..n)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(base_seed + i as u64);
                let arrivals = vec![
                    Arrival {
                        delay_s: (120.0 + 7.0 * (i % 5) as f64) * 1e-9,
                        amplitude: Complex64::from_polar(1.0, 0.3 * i as f64),
                        pulse: PulseShape::from_config(&RadioConfig::default()),
                    },
                    Arrival {
                        delay_s: 180e-9,
                        amplitude: Complex64::from_polar(0.6, 1.1),
                        pulse: PulseShape::from_config(&RadioConfig::default()),
                    },
                ];
                CirSynthesizer::new(Prf::Mhz64)
                    .with_noise_sigma(0.003)
                    .render(&arrivals, &mut rng)
            })
            .collect()
    }

    fn search_subtract() -> SearchSubtractDetector {
        SearchSubtractDetector::from_registers(
            &TcPgDelay::spread(2).unwrap(),
            Channel::Ch7,
            SearchSubtractConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn detect_batch_equals_sequential_detect_with_at_every_size() {
        let detector = search_subtract();
        for &batch in &[1usize, 2, 7, 64] {
            let cirs = render_batch(batch, 1000 + batch as u64);
            let mut batch_ctx = DetectorContext::new();
            let batched = detector.detect_batch(&mut batch_ctx, &cirs, 2).unwrap();

            let mut seq_ctx = DetectorContext::new();
            let sequential: Vec<_> = cirs
                .iter()
                .map(|cir| detector.detect_with(&mut seq_ctx, cir, 2).unwrap())
                .collect();
            assert_eq!(batched, sequential, "batch size {batch}");
        }
    }

    #[test]
    fn detect_batch_works_for_the_threshold_baseline() {
        let detector = ThresholdDetector::new(ThresholdConfig::default()).unwrap();
        let cirs = render_batch(7, 42);
        let mut ctx = DetectorContext::new();
        let batched = detector.detect_batch(&mut ctx, &cirs, 2).unwrap();
        assert_eq!(batched.len(), 7);
        let mut seq_ctx = DetectorContext::new();
        for (i, cir) in cirs.iter().enumerate() {
            assert_eq!(
                batched[i],
                detector.detect_with(&mut seq_ctx, cir, 2).unwrap(),
                "cir {i}"
            );
        }
    }

    #[test]
    fn batch_errors_abort_on_first_failure() {
        let detector = search_subtract();
        let cirs = render_batch(3, 7);
        let mut ctx = DetectorContext::new();
        assert!(matches!(
            detector.detect_batch(&mut ctx, &cirs, 0),
            Err(RangingError::NoResponsesRequested)
        ));
    }

    #[test]
    fn trait_detect_matches_inherent_detect() {
        let detector = search_subtract();
        let cirs = render_batch(1, 99);
        let inherent = SearchSubtractDetector::detect(&detector, &cirs[0], 2).unwrap();
        let through_trait = Detector::detect(&detector, &cirs[0], 2).unwrap();
        assert_eq!(inherent, through_trait);
    }

    #[test]
    fn non_default_backends_recover_the_same_responses() {
        // End-to-end tolerance leg: the ToA estimates from the rfft and
        // f32 backends must agree with the scalar reference far inside
        // the CIR noise floor (±0.003 noise sigma ≈ tens of ps of ToA
        // jitter; backend deltas sit orders of magnitude below).
        let detector = search_subtract();
        let cirs = render_batch(4, 555);
        let mut reference_ctx = DetectorContext::with_backend(DspBackend::ScalarF64);
        let reference = detector.detect_batch(&mut reference_ctx, &cirs, 2).unwrap();

        for (backend, tau_tol_s) in [(DspBackend::RealFft, 1e-13), (DspBackend::F32, 5e-12)] {
            let mut ctx = DetectorContext::with_backend(backend);
            let outcomes = detector.detect_batch(&mut ctx, &cirs, 2).unwrap();
            for (trial, (got, want)) in outcomes.iter().zip(&reference).enumerate() {
                assert_eq!(
                    got.responses.len(),
                    want.responses.len(),
                    "{backend} trial {trial}"
                );
                for (a, b) in got.responses.iter().zip(&want.responses) {
                    let dt = (a.tau_s - b.tau_s).abs();
                    assert!(
                        dt < tau_tol_s,
                        "{backend} trial {trial}: ToA delta {dt} s exceeds {tau_tol_s}"
                    );
                    assert_eq!(a.shape_index, b.shape_index, "{backend} trial {trial}");
                }
            }
        }
    }
}
