//! Response detection in the channel impulse response.
//!
//! Implements both detectors the paper evaluates:
//!
//! - [`SearchSubtractDetector`]: the proposed algorithm (Sect. IV) —
//!   matched-filter bank, iterative strongest-path extraction and
//!   subtraction, amplitude-independent, with pulse-shape identification
//!   (Sect. V) built in.
//! - [`ThresholdDetector`]: the threshold-crossing baseline (Falsi et al.)
//!   used as the comparison point in Sect. VI.
//!
//! Both implement the [`Detector`] trait (`detect` / `detect_with` /
//! `detect_batch`), and both dispatch their DSP kernels through the
//! backend carried by the [`DetectorContext`] (`UWB_DSP_BACKEND`, or
//! [`DetectorContext::with_backend`]).

mod context;
mod detector;
mod search_subtract;
mod shape_scores;
mod templates;
mod threshold;

pub use context::DetectorContext;
pub use detector::Detector;
pub use search_subtract::{
    DetectionDiagnostics, DetectionOutcome, SearchSubtractConfig, SearchSubtractDetector,
};
pub use shape_scores::ShapeScores;
pub use templates::{template_bank, DetectionTemplate};
pub use threshold::{ThresholdConfig, ThresholdDetector};

use uwb_dsp::Complex64;

/// One detected responder response: the `(α̂_k, τ_k)` pair of the paper,
/// plus identification information.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectedResponse {
    /// Path delay `τ_k` of the pulse center within the CIR window, seconds.
    pub tau_s: f64,
    /// Estimated complex amplitude `α̂_k`.
    pub amplitude: Complex64,
    /// Index of the best-matching pulse shape in the template bank
    /// (the decoded responder shape, Sect. V).
    pub shape_index: usize,
    /// Identification score `α̂_{k,i}` for every template in the bank,
    /// stored inline for typical bank sizes.
    pub shape_scores: ShapeScores,
}

impl DetectedResponse {
    /// The response delay expressed in (un-upsampled) CIR taps.
    pub fn tau_taps(&self) -> f64 {
        self.tau_s / uwb_radio::CIR_SAMPLE_PERIOD_S
    }

    /// Margin of the identification decision: best score divided by the
    /// runner-up (≥ 1.0; higher is a more confident shape decision).
    pub fn id_margin(&self) -> f64 {
        let mut sorted = self.shape_scores.to_vec();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        match (sorted.first(), sorted.get(1)) {
            (Some(&best), Some(&second)) if second > 0.0 => best / second,
            _ => f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_taps_conversion() {
        let r = DetectedResponse {
            tau_s: 10.0 * uwb_radio::CIR_SAMPLE_PERIOD_S,
            amplitude: Complex64::ONE,
            shape_index: 0,
            shape_scores: ShapeScores::from_slice(&[1.0]),
        };
        assert!((r.tau_taps() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn id_margin_ratio() {
        let r = DetectedResponse {
            tau_s: 0.0,
            amplitude: Complex64::ONE,
            shape_index: 0,
            shape_scores: ShapeScores::from_slice(&[0.9, 0.3, 0.45]),
        };
        assert!((r.id_margin() - 2.0).abs() < 1e-12);
        let single = DetectedResponse {
            shape_scores: ShapeScores::from_slice(&[0.9]),
            ..r
        };
        assert_eq!(single.id_margin(), f64::INFINITY);
    }
}
