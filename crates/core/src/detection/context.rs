//! Per-worker detection context: cached DSP plans plus reusable working
//! buffers for the detection hot path.
//!
//! Both detectors re-run the same transform sizes for every CIR (1016
//! taps upsampled ×8 → 8128 samples, matched-filtered per template). A
//! [`DetectorContext`] owns a [`uwb_dsp::DspContext`] (FFT plan cache +
//! scratch arena) and the detector-level buffers — the residual, the
//! per-template matched-filter output and magnitudes — so a steady-state
//! `detect_with` call allocates (almost) nothing. Build one context per
//! worker thread and reuse it across trials; outputs are bit-identical
//! to the context-free entry points.

use uwb_dsp::{Complex64, DspContext};

/// Reusable state for repeated detection runs on one worker.
///
/// # Examples
///
/// ```
/// use concurrent_ranging::detection::DetectorContext;
///
/// let mut ctx = DetectorContext::new();
/// // Pass to `SearchSubtractDetector::detect_with` /
/// // `ThresholdDetector::detect_with` across many trials.
/// # let _ = &mut ctx;
/// ```
#[derive(Debug, Default)]
pub struct DetectorContext {
    /// FFT plans and complex scratch buffers.
    pub(crate) dsp: DspContext,
    /// The upsampled CIR, iteratively reduced by subtraction.
    pub(crate) residual: Vec<Complex64>,
    /// Matched-filter output of the template currently being scanned.
    pub(crate) mf_out: Vec<Complex64>,
    /// Magnitudes of `mf_out`.
    pub(crate) mags: Vec<f64>,
    /// Magnitudes of the best template seen this iteration.
    pub(crate) best_mf: Vec<f64>,
    /// Refinement-window scores of the template currently being scanned.
    pub(crate) scores: Vec<f64>,
    /// Refinement-window scores of the best template seen so far.
    pub(crate) best_scores: Vec<f64>,
}

impl DetectorContext {
    /// A context with empty caches; buffers grow to steady-state sizes on
    /// first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying DSP context (plan cache + scratch arena), for
    /// callers that mix detection with their own planned DSP work.
    pub fn dsp_mut(&mut self) -> &mut DspContext {
        &mut self.dsp
    }
}
