//! Per-worker detection context: cached DSP plans plus reusable working
//! buffers for the detection hot path.
//!
//! Both detectors re-run the same transform sizes for every CIR (1016
//! taps upsampled ×8 → 8128 samples, matched-filtered per template). A
//! [`DetectorContext`] owns a [`uwb_dsp::DspContext`] (FFT plan cache +
//! scratch arena) and the detector-level buffers — the residual and the
//! per-template matched-filter magnitudes — so a steady-state
//! `detect_with` call allocates (almost) nothing. Build one context per
//! worker thread and reuse it across trials; outputs are bit-identical
//! to the context-free entry points.
//!
//! The context also carries the [`DspBackend`] selection the detectors
//! dispatch their kernels through: [`DetectorContext::new`] honors the
//! `UWB_DSP_BACKEND` environment knob (unset → the bit-identical f64
//! default), [`DetectorContext::with_backend`] pins one explicitly.

use uwb_dsp::{Complex64, DspBackend, DspContext};

/// Reusable state for repeated detection runs on one worker.
///
/// # Examples
///
/// ```
/// use concurrent_ranging::detection::DetectorContext;
/// use uwb_dsp::DspBackend;
///
/// let mut ctx = DetectorContext::new(); // backend from UWB_DSP_BACKEND
/// assert_eq!(
///     DetectorContext::with_backend(DspBackend::F32).backend(),
///     DspBackend::F32,
/// );
/// // Pass to `SearchSubtractDetector::detect_with` /
/// // `ThresholdDetector::detect_with` across many trials.
/// # let _ = &mut ctx;
/// ```
#[derive(Debug)]
pub struct DetectorContext {
    /// FFT plans, complex scratch buffers, and the backend dispatch.
    pub(crate) dsp: DspContext,
    /// The upsampled CIR, iteratively reduced by subtraction.
    pub(crate) residual: Vec<Complex64>,
    /// Matched-filter magnitudes of the template currently being scanned.
    pub(crate) mags: Vec<f64>,
    /// Magnitudes of the best template seen this iteration.
    pub(crate) best_mf: Vec<f64>,
    /// Refinement-window scores of the template currently being scanned.
    pub(crate) scores: Vec<f64>,
    /// Refinement-window scores of the best template seen so far.
    pub(crate) best_scores: Vec<f64>,
}

impl Default for DetectorContext {
    fn default() -> Self {
        Self::new()
    }
}

impl DetectorContext {
    /// A context with empty caches; buffers grow to steady-state sizes on
    /// first use. The DSP backend comes from the `UWB_DSP_BACKEND`
    /// environment knob; when unset, the default scalar f64 kernels run
    /// and outputs are bit-identical to the historical pipeline.
    #[must_use]
    pub fn new() -> Self {
        Self::with_backend(DspBackend::from_env())
    }

    /// A context pinned to the given DSP backend, ignoring the
    /// environment.
    #[must_use]
    pub fn with_backend(backend: DspBackend) -> Self {
        Self {
            dsp: DspContext::with_backend(backend),
            residual: Vec::new(),
            mags: Vec::new(),
            best_mf: Vec::new(),
            scores: Vec::new(),
            best_scores: Vec::new(),
        }
    }

    /// The backend detection kernels dispatch to.
    #[must_use]
    pub fn backend(&self) -> DspBackend {
        self.dsp.backend()
    }

    /// The underlying DSP context (plan cache + scratch arena + backend
    /// selection), for callers that mix detection with their own planned
    /// DSP work or switch backends mid-stream.
    pub fn dsp_mut(&mut self) -> &mut DspContext {
        &mut self.dsp
    }
}
