//! Detection templates: sampled pulse shapes ready for matched filtering.
//!
//! The paper identifies the DW1000 pulse shape with a cable measurement
//! campaign (Sect. IV); our substitute is the analytic [`PulseShape`]. A
//! [`DetectionTemplate`] samples one shape at the detection sample rate
//! (the upsampled CIR rate), normalized to unit energy so that matched
//! filter outputs of *different* templates are directly comparable — the
//! property the pulse-shape identification (Sect. V) relies on.

use uwb_dsp::{Complex64, DspContext, MatchedFilter};
use uwb_radio::{PulseShape, TcPgDelay};

/// A pulse template prepared for detection at a fixed sample rate.
#[derive(Debug, Clone)]
pub struct DetectionTemplate {
    /// Index of this shape within the template bank.
    pub shape_index: usize,
    /// The register value the shape corresponds to, if built from one.
    pub register: Option<TcPgDelay>,
    pulse: PulseShape,
    filter: MatchedFilter,
    /// The unit-energy sampled pulse the filter was built from, kept for
    /// integer-grid scoring ([`DetectionTemplate::score_grid_into`]).
    grid: Vec<f64>,
    /// Offset in samples from template start to the pulse center.
    peak_offset: usize,
    sample_period_s: f64,
}

impl DetectionTemplate {
    /// Samples `pulse` at `sample_period_s` and builds the matched filter.
    ///
    /// # Panics
    ///
    /// Panics if the sample period is not strictly positive and finite
    /// (propagated from [`PulseShape::sample`]).
    pub fn new(pulse: PulseShape, shape_index: usize, sample_period_s: f64) -> Self {
        let sampled = pulse.sample(sample_period_s);
        let filter =
            MatchedFilter::from_real(&sampled.samples).expect("pulse templates are never empty");
        Self {
            shape_index,
            register: pulse.register(),
            pulse,
            filter,
            grid: sampled.samples,
            peak_offset: sampled.peak_index,
            sample_period_s,
        }
    }

    /// The analytic pulse behind this template.
    pub fn pulse(&self) -> &PulseShape {
        &self.pulse
    }

    /// Template length `N_p` in samples.
    pub fn len(&self) -> usize {
        self.filter.len()
    }

    /// `true` when the template holds no samples (never for a constructed
    /// template; for API completeness).
    pub fn is_empty(&self) -> bool {
        self.filter.is_empty()
    }

    /// The sample period this template was built for.
    pub fn sample_period_s(&self) -> f64 {
        self.sample_period_s
    }

    /// Offset in samples from template start to the pulse center.
    pub fn peak_offset(&self) -> usize {
        self.peak_offset
    }

    /// Matched-filter output (complex, template-start-aligned, same length
    /// as the signal). Because the template is unit-energy, outputs are
    /// comparable across templates of different widths.
    pub fn matched_filter(&self, signal: &[Complex64]) -> Vec<Complex64> {
        self.filter
            .apply(signal)
            .expect("signal validated by caller")
    }

    /// Planned variant of [`DetectionTemplate::matched_filter`]: writes
    /// the output into `out`, drawing cached plans and working buffers
    /// from `ctx`. Bit-identical values; allocation-free in steady state.
    pub fn matched_filter_into(
        &self,
        signal: &[Complex64],
        out: &mut Vec<Complex64>,
        ctx: &mut DspContext,
    ) {
        self.filter
            .apply_into(signal, out, ctx)
            .expect("signal validated by caller");
    }

    /// The prepared matched filter behind this template, for callers that
    /// dispatch through the backend-generic [`uwb_dsp::Kernels`] entry
    /// points (which key their kernel-spectrum caches on the filter).
    pub fn filter(&self) -> &MatchedFilter {
        &self.filter
    }

    /// Converts a start-aligned matched-filter peak index to the pulse
    /// center delay in seconds.
    pub fn center_delay_s(&self, start_index_frac: f64) -> f64 {
        (start_index_frac + self.peak_offset as f64) * self.sample_period_s
    }

    /// Estimates the complex pulse amplitude at a fractional center delay
    /// `tau_s` by projecting the signal onto the analytically shifted
    /// pulse — exact even for off-grid delays.
    pub fn amplitude_at(&self, signal: &[Complex64], tau_s: f64) -> Complex64 {
        let (lo, hi) = self.support_range(signal.len(), tau_s);
        uwb_obs::profile::work("template.eval", hi.saturating_sub(lo) as u64);
        let mut num = Complex64::ZERO;
        let mut den = 0.0;
        for (n, sample) in signal.iter().enumerate().take(hi).skip(lo) {
            let p = self.pulse.evaluate(n as f64 * self.sample_period_s - tau_s);
            if p != 0.0 {
                num += sample.scale(p);
                den += p * p;
            }
        }
        if den > 0.0 {
            num.scale(1.0 / den)
        } else {
            Complex64::ZERO
        }
    }

    /// Identification score of this template for a pulse centered at
    /// `tau_s`: the magnitude of the unit-energy-normalized correlation
    /// (`α̂_{k,i}` in the paper's Sect. V).
    pub fn score_at(&self, signal: &[Complex64], tau_s: f64) -> f64 {
        let (lo, hi) = self.support_range(signal.len(), tau_s);
        uwb_obs::profile::work("template.eval", hi.saturating_sub(lo) as u64);
        let mut num = Complex64::ZERO;
        let mut energy = 0.0;
        for (n, sample) in signal.iter().enumerate().take(hi).skip(lo) {
            let p = self.pulse.evaluate(n as f64 * self.sample_period_s - tau_s);
            if p != 0.0 {
                num += sample.scale(p);
                energy += p * p;
            }
        }
        if energy > 0.0 {
            num.abs() / energy.sqrt()
        } else {
            0.0
        }
    }

    /// Identification scores over a window of *integer-grid* delays:
    /// `out[i]` agrees with `score_at(signal, (lo + i) · Ts)` to
    /// floating-point rounding (the score is invariant to the template's
    /// energy normalization), but correlates against the pre-sampled
    /// pulse instead of re-evaluating the analytic shape per sample —
    /// the dominant cost of the refinement re-search. The scalar f64
    /// backend keeps the analytic [`DetectionTemplate::score_at`] path,
    /// whose per-call rounding this does not reproduce bit-for-bit.
    pub fn score_grid_into(&self, signal: &[Complex64], lo: usize, hi: usize, out: &mut Vec<f64>) {
        out.clear();
        let peak = self.peak_offset as isize;
        let mut macs = 0u64;
        for l in lo..=hi.min(signal.len().saturating_sub(1)) {
            let base = l as isize - peak;
            let k_lo = (-base).max(0) as usize;
            let k_hi = self
                .grid
                .len()
                .min((signal.len() as isize - base).max(0) as usize);
            let mut num = Complex64::ZERO;
            let mut energy = 0.0;
            for (k, &p) in self.grid[k_lo..k_hi].iter().enumerate() {
                let n = (base + (k_lo + k) as isize) as usize;
                num += signal[n].scale(p);
                energy += p * p;
            }
            macs += k_hi.saturating_sub(k_lo) as u64;
            out.push(if energy > 0.0 {
                num.norm_sqr().sqrt() / energy.sqrt()
            } else {
                0.0
            });
        }
        uwb_obs::profile::work("template.grid_mac", macs);
    }

    /// Subtracts `amplitude · p(t − tau_s)` from the signal in place —
    /// step 5 of the paper's detection algorithm.
    pub fn subtract(&self, signal: &mut [Complex64], tau_s: f64, amplitude: Complex64) {
        let (lo, hi) = self.support_range(signal.len(), tau_s);
        uwb_obs::profile::work("template.subtract", hi.saturating_sub(lo) as u64);
        for (n, sample) in signal.iter_mut().enumerate().take(hi).skip(lo) {
            let p = self.pulse.evaluate(n as f64 * self.sample_period_s - tau_s);
            if p != 0.0 {
                *sample -= amplitude.scale(p);
            }
        }
    }

    /// Sample-index range covering the pulse support around `tau_s`.
    fn support_range(&self, signal_len: usize, tau_s: f64) -> (usize, usize) {
        let half = self.pulse.duration_s() / 2.0;
        let lo = ((tau_s - half) / self.sample_period_s).floor().max(0.0) as usize;
        let hi = (((tau_s + half) / self.sample_period_s).ceil() as usize + 1).min(signal_len);
        (lo.min(signal_len), hi)
    }
}

/// Builds a bank of detection templates from register values.
pub fn template_bank(
    registers: &[TcPgDelay],
    channel: uwb_radio::Channel,
    sample_period_s: f64,
) -> Vec<DetectionTemplate> {
    registers
        .iter()
        .enumerate()
        .map(|(i, &reg)| {
            DetectionTemplate::new(PulseShape::from_register(reg, channel), i, sample_period_s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_radio::{Channel, RadioConfig};

    const TS: f64 = 1.0016e-9 / 8.0; // upsampled by 8

    fn template() -> DetectionTemplate {
        DetectionTemplate::new(PulseShape::from_config(&RadioConfig::default()), 0, TS)
    }

    fn render(pulse: &PulseShape, tau_s: f64, amp: Complex64, len: usize) -> Vec<Complex64> {
        (0..len)
            .map(|n| amp.scale(pulse.evaluate(n as f64 * TS - tau_s)))
            .collect()
    }

    #[test]
    fn matched_filter_peak_locates_pulse_center() {
        let t = template();
        let tau = 300.0 * TS;
        let signal = render(t.pulse(), tau, Complex64::from_real(0.8), 1000);
        let out = t.matched_filter(&signal);
        let mags: Vec<f64> = out.iter().map(|z| z.abs()).collect();
        let (l, _) = uwb_dsp::argmax(&mags).unwrap();
        let recovered = t.center_delay_s(l as f64);
        assert!(
            (recovered - tau).abs() < TS,
            "recovered {recovered}, true {tau}"
        );
    }

    #[test]
    fn amplitude_at_recovers_complex_amplitude() {
        let t = template();
        let amp = Complex64::from_polar(0.37, 2.1);
        // Off-grid delay.
        let tau = 123.456 * TS;
        let signal = render(t.pulse(), tau, amp, 600);
        let est = t.amplitude_at(&signal, tau);
        assert!((est - amp).abs() < 1e-9, "est {est}, true {amp}");
    }

    #[test]
    fn subtract_removes_pulse_completely() {
        let t = template();
        let amp = Complex64::from_polar(1.3, -0.4);
        let tau = 200.7 * TS;
        let mut signal = render(t.pulse(), tau, amp, 600);
        t.subtract(&mut signal, tau, amp);
        let residual: f64 = signal.iter().map(|z| z.abs()).fold(0.0, f64::max);
        assert!(residual < 1e-12, "residual {residual}");
    }

    #[test]
    fn score_is_highest_for_matching_template() {
        let bank = template_bank(&TcPgDelay::spread(3).unwrap(), Channel::Ch7, TS);
        for (i, source) in bank.iter().enumerate() {
            let tau = 400.0 * TS;
            let signal = render(source.pulse(), tau, Complex64::from_real(1.0), 1200);
            let scores: Vec<f64> = bank.iter().map(|t| t.score_at(&signal, tau)).collect();
            let best = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(best, i, "scores {scores:?}");
        }
    }

    #[test]
    fn score_scales_linearly_with_amplitude() {
        let t = template();
        let tau = 250.0 * TS;
        let s1 = render(t.pulse(), tau, Complex64::from_real(1.0), 800);
        let s2 = render(t.pulse(), tau, Complex64::from_real(2.5), 800);
        let r = t.score_at(&s2, tau) / t.score_at(&s1, tau);
        assert!((r - 2.5).abs() < 1e-9);
    }

    #[test]
    fn support_near_signal_edges_is_clipped() {
        let t = template();
        // Pulse centered right at sample 0 and at the end: no panic.
        let signal = vec![Complex64::ONE; 100];
        let _ = t.amplitude_at(&signal, 0.0);
        let _ = t.score_at(&signal, 99.0 * TS);
        let mut sig = signal;
        t.subtract(&mut sig, 0.0, Complex64::ONE);
    }

    #[test]
    fn bank_indices_and_registers() {
        let regs = TcPgDelay::spread(4).unwrap();
        let bank = template_bank(&regs, Channel::Ch7, TS);
        assert_eq!(bank.len(), 4);
        for (i, t) in bank.iter().enumerate() {
            assert_eq!(t.shape_index, i);
            assert_eq!(t.register, Some(regs[i]));
        }
    }
}
