//! The threshold-based baseline detector (Falsi et al.), as described in
//! the paper's Sect. VI.
//!
//! "The threshold-based algorithm compares the channel impulse response
//! with a defined threshold. If the CIR crosses this threshold, the maximum
//! of the following N_p samples, i.e., the pulse duration, is derived.
//! This operation is repeated until N − 1 peaks are detected."
//!
//! The baseline exists to quantify what search-and-subtract buys: when two
//! responses overlap within a pulse duration, the threshold scan merges
//! them into one window and finds a single peak (the 48 % vs 92.6 %
//! comparison of Sect. VI).

use crate::detection::context::DetectorContext;
use crate::detection::shape_scores::ShapeScores;
use crate::detection::DetectedResponse;
use crate::error::RangingError;
use uwb_dsp::Kernels;
use uwb_radio::Cir;

/// Configuration of the threshold detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdConfig {
    /// FFT upsampling factor (kept equal to the search-and-subtract
    /// detector's for a fair comparison).
    pub upsample: usize,
    /// Threshold as a fraction of the global CIR peak — note this makes the
    /// baseline amplitude-*dependent*, one of the weaknesses the paper
    /// calls out.
    pub threshold_fraction: f64,
    /// Pulse duration `T_p` in seconds (the window scanned after each
    /// threshold crossing).
    pub pulse_duration_s: f64,
}

impl Default for ThresholdConfig {
    fn default() -> Self {
        Self {
            upsample: 8,
            threshold_fraction: 0.25,
            // The scan window is the *effective* pulse duration — main
            // lobe plus first side lobes ("the maximum of the following
            // N_p samples, i.e., the pulse duration", Sect. VI). The full
            // truncated support includes −50 dB tails that no practical
            // threshold scan would treat as one pulse.
            pulse_duration_s: 2.0
                * uwb_radio::PulseShape::from_config(&uwb_radio::RadioConfig::default())
                    .main_lobe_s(),
        }
    }
}

/// The threshold-crossing baseline detector.
///
/// # Examples
///
/// ```
/// use concurrent_ranging::detection::{ThresholdConfig, ThresholdDetector};
///
/// let detector = ThresholdDetector::new(ThresholdConfig::default())?;
/// assert_eq!(detector.config().upsample, 8);
/// # Ok::<(), concurrent_ranging::RangingError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdDetector {
    config: ThresholdConfig,
}

impl ThresholdDetector {
    /// Validates the configuration and builds the detector.
    ///
    /// # Errors
    ///
    /// Returns [`RangingError::InvalidUpsampling`] for a zero factor and
    /// [`RangingError::InvalidSchemeParameters`] for a non-positive
    /// threshold fraction or pulse duration.
    pub fn new(config: ThresholdConfig) -> Result<Self, RangingError> {
        if config.upsample == 0 {
            return Err(RangingError::InvalidUpsampling { factor: 0 });
        }
        // NaN parameters must be rejected too, so the bounds are written
        // as positive requirements on each field.
        let fraction_ok = config.threshold_fraction > 0.0 && config.threshold_fraction < 1.0;
        let duration_ok = config.pulse_duration_s > 0.0;
        if !fraction_ok || !duration_ok {
            return Err(RangingError::InvalidSchemeParameters);
        }
        Ok(Self { config })
    }

    /// The configuration.
    pub fn config(&self) -> &ThresholdConfig {
        &self.config
    }

    /// Scans the CIR for up to `count` peaks.
    ///
    /// Unlike search-and-subtract, the scan can return *fewer* than
    /// `count` responses — exactly the failure mode the paper measures —
    /// so the caller inspects the length.
    ///
    /// # Errors
    ///
    /// Returns [`RangingError::NoResponsesRequested`] when `count` is zero.
    pub fn detect(&self, cir: &Cir, count: usize) -> Result<Vec<DetectedResponse>, RangingError> {
        let mut ctx = DetectorContext::new();
        self.detect_with(&mut ctx, cir, count)
    }

    /// [`ThresholdDetector::detect`] reusing the plans and buffers in
    /// `ctx`. Bit-identical outputs; the scan itself allocates nothing
    /// in steady state beyond the returned responses.
    ///
    /// # Errors
    ///
    /// Returns [`RangingError::NoResponsesRequested`] when `count` is zero.
    pub fn detect_with(
        &self,
        ctx: &mut DetectorContext,
        cir: &Cir,
        count: usize,
    ) -> Result<Vec<DetectedResponse>, RangingError> {
        if count == 0 {
            return Err(RangingError::NoResponsesRequested);
        }
        let DetectorContext {
            dsp,
            residual: up,
            mags,
            ..
        } = ctx;
        dsp.upsample_into(cir.taps(), self.config.upsample, up)?;
        dsp.magnitudes_into(up, mags);
        let sample_period_s = cir.sample_period_s() / self.config.upsample as f64;
        let np = (self.config.pulse_duration_s / sample_period_s).ceil() as usize;
        let peak = mags.iter().cloned().fold(0.0, f64::max);
        let threshold = self.config.threshold_fraction * peak;
        if peak <= 0.0 {
            return Ok(Vec::new());
        }

        let mut responses = Vec::new();
        let mut i = 0;
        while i < mags.len() && responses.len() < count {
            if mags[i] >= threshold {
                // Maximum of the following N_p samples.
                let end = (i + np).min(mags.len());
                let (local_max, _) = uwb_dsp::argmax(&mags[i..end]).expect("non-empty window");
                let idx = i + local_max;
                responses.push(DetectedResponse {
                    tau_s: idx as f64 * sample_period_s,
                    amplitude: up[idx],
                    shape_index: 0,
                    shape_scores: ShapeScores::from_slice(&[mags[idx]]),
                });
                i = end;
            } else {
                i += 1;
            }
        }
        Ok(responses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uwb_channel::{Arrival, CirSynthesizer};
    use uwb_dsp::Complex64;
    use uwb_radio::{Prf, PulseShape, RadioConfig};

    fn arrival(delay_ns: f64, amp: f64) -> Arrival {
        Arrival {
            delay_s: delay_ns * 1e-9,
            amplitude: Complex64::from_polar(amp, 0.7 * delay_ns),
            pulse: PulseShape::from_config(&RadioConfig::default()),
        }
    }

    fn render(arrivals: &[Arrival], noise: f64, seed: u64) -> Cir {
        let mut rng = StdRng::seed_from_u64(seed);
        CirSynthesizer::new(Prf::Mhz64)
            .with_noise_sigma(noise)
            .render(arrivals, &mut rng)
    }

    fn detector() -> ThresholdDetector {
        ThresholdDetector::new(ThresholdConfig::default()).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(ThresholdDetector::new(ThresholdConfig {
            upsample: 0,
            ..ThresholdConfig::default()
        })
        .is_err());
        assert!(ThresholdDetector::new(ThresholdConfig {
            threshold_fraction: 1.5,
            ..ThresholdConfig::default()
        })
        .is_err());
        assert!(ThresholdDetector::new(ThresholdConfig {
            pulse_duration_s: 0.0,
            ..ThresholdConfig::default()
        })
        .is_err());
    }

    #[test]
    fn finds_well_separated_peaks() {
        let d = detector();
        let cir = render(&[arrival(100.0, 1.0), arrival(200.0, 0.8)], 0.002, 1);
        let out = d.detect(&cir, 2).unwrap();
        assert_eq!(out.len(), 2);
        assert!((out[0].tau_s * 1e9 - 100.0).abs() < 1.0);
        assert!((out[1].tau_s * 1e9 - 200.0).abs() < 1.0);
    }

    #[test]
    fn merges_overlapping_responses_into_one_peak() {
        // The failure mode of Sect. VI: two responses 1.5 ns apart (within
        // the pulse window) collapse into one detection.
        let d = detector();
        let cir = render(&[arrival(150.0, 1.0), arrival(151.5, 0.9)], 0.002, 2);
        let out = d.detect(&cir, 2).unwrap();
        // Either only one peak was found, or the "second" is a spurious
        // late crossing — not the true second response.
        let near_both = out
            .iter()
            .filter(|r| (r.tau_s * 1e9 - 150.0).abs() < 0.8 || (r.tau_s * 1e9 - 151.5).abs() < 0.8)
            .count();
        assert!(near_both <= 1, "baseline should merge overlapping pulses");
    }

    #[test]
    fn empty_cir_returns_no_peaks() {
        let d = detector();
        let cir = render(&[], 0.0, 3);
        assert!(d.detect(&cir, 2).unwrap().is_empty());
    }

    #[test]
    fn zero_count_is_an_error() {
        let d = detector();
        let cir = render(&[arrival(100.0, 1.0)], 0.0, 4);
        assert!(matches!(
            d.detect(&cir, 0),
            Err(RangingError::NoResponsesRequested)
        ));
    }

    #[test]
    fn weak_second_path_below_threshold_is_missed() {
        // Amplitude dependence (challenge IV): a second response 20 dB below
        // the first falls under the relative threshold and is missed —
        // search-and-subtract finds it (see its tests).
        let d = detector();
        let cir = render(&[arrival(100.0, 1.0), arrival(300.0, 0.05)], 0.001, 5);
        let out = d.detect(&cir, 2).unwrap();
        let found_weak = out.iter().any(|r| (r.tau_s * 1e9 - 300.0).abs() < 2.0);
        assert!(!found_weak, "threshold baseline should miss the weak path");
    }

    #[test]
    fn reused_context_is_bit_identical_to_fresh_detection() {
        let d = detector();
        let mut ctx = DetectorContext::new();
        for seed in 0..3u64 {
            let cir = render(&[arrival(100.0, 1.0), arrival(210.0, 0.7)], 0.002, seed);
            assert_eq!(
                d.detect(&cir, 2).unwrap(),
                d.detect_with(&mut ctx, &cir, 2).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn respects_requested_count() {
        let d = detector();
        let cir = render(
            &[
                arrival(100.0, 1.0),
                arrival(200.0, 0.9),
                arrival(300.0, 0.8),
            ],
            0.002,
            6,
        );
        let out = d.detect(&cir, 2).unwrap();
        assert_eq!(out.len(), 2);
    }
}
