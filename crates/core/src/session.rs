//! Multi-round aggregation: turning raw per-round outcomes into robust
//! per-responder range estimates.
//!
//! A single concurrent round carries the DW1000's ±8 ns delayed-TX
//! truncation on every non-anchor distance (paper, Sect. III). Because the
//! truncation phase re-randomizes each round, *aggregating a handful of
//! rounds* shrinks the error like a zero-mean noise term — a practical
//! layer any deployment adds on top of the paper's single-round scheme.
//! [`RangingSession`] accumulates [`RoundOutcome`]s and reports median
//! distances with MAD-based outlier rejection plus availability statistics.

use crate::concurrent::RoundOutcome;
use crate::error::RangingError;
use std::collections::BTreeMap;
use uwb_dsp::stats;

/// Aggregated statistics for one responder across a session.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponderStats {
    /// The responder ID.
    pub id: u32,
    /// Robust (median) distance estimate over accepted samples, meters.
    pub distance_m: f64,
    /// Spread (scaled MAD ≈ σ) of accepted samples, meters.
    pub spread_m: f64,
    /// Samples accepted after outlier rejection.
    pub accepted: usize,
    /// Samples rejected as outliers.
    pub rejected: usize,
    /// Fraction of session rounds in which this responder was resolved.
    pub availability: f64,
}

/// One identified responder sample from a concurrent round, in the form
/// batch producers (the city-scale world simulator, offline trace
/// replays) hand over: no [`RoundOutcome`] envelope, just the identity,
/// the distance and the capture amplitude used for same-ID arbitration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundSample {
    /// Decoded responder ID.
    pub id: u32,
    /// Estimated distance in meters.
    pub distance_m: f64,
    /// First-path amplitude of the frame the estimate came from
    /// (strongest wins when two frames decode to the same ID).
    pub amplitude: f64,
}

/// Aggregates concurrent-ranging rounds into robust per-responder ranges.
///
/// # Examples
///
/// ```
/// use concurrent_ranging::RangingSession;
///
/// let mut session = RangingSession::new();
/// assert_eq!(session.rounds(), 0);
/// session.set_outlier_threshold(4.0)?;
/// # Ok::<(), concurrent_ranging::RangingError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RangingSession {
    /// Distance samples per responder ID.
    samples: BTreeMap<u32, Vec<f64>>,
    rounds: usize,
    failed: usize,
    /// Outlier threshold in scaled-MAD units (default 3.5).
    outlier_threshold: f64,
}

impl RangingSession {
    /// An empty session.
    pub fn new() -> Self {
        Self {
            samples: BTreeMap::new(),
            rounds: 0,
            failed: 0,
            outlier_threshold: 3.5,
        }
    }

    /// Sets the outlier threshold in robust-σ units (samples farther than
    /// this from the median are rejected).
    ///
    /// # Errors
    ///
    /// Returns [`RangingError::InvalidParameter`] on non-positive or
    /// non-finite thresholds.
    pub fn set_outlier_threshold(&mut self, threshold: f64) -> Result<(), RangingError> {
        if !(threshold.is_finite() && threshold > 0.0) {
            return Err(RangingError::InvalidParameter {
                name: "outlier_threshold",
                value: threshold,
            });
        }
        self.outlier_threshold = threshold;
        Ok(())
    }

    /// Number of rounds ingested (successful and failed).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Number of successfully completed rounds ingested.
    pub fn completed(&self) -> usize {
        self.rounds - self.failed
    }

    /// Number of failed rounds ingested via
    /// [`RangingSession::ingest_failure`].
    pub fn failed(&self) -> usize {
        self.failed
    }

    /// Fraction of ingested rounds that completed (1.0 for an empty
    /// session: no evidence of failure).
    pub fn success_rate(&self) -> f64 {
        if self.rounds == 0 {
            return 1.0;
        }
        self.completed() as f64 / self.rounds as f64
    }

    /// Ingests one round outcome.
    ///
    /// At most one sample per responder is taken from a round (the
    /// strongest, if a spurious detection decoded to an already-occupied
    /// slot/shape pair) so availability stays a per-round fraction.
    pub fn ingest(&mut self, outcome: &RoundOutcome) {
        self.ingest_round_samples(outcome.estimates.iter().filter_map(|estimate| {
            estimate.id.map(|id| RoundSample {
                id,
                distance_m: estimate.distance_m,
                amplitude: estimate.amplitude,
            })
        }));
    }

    /// Ingests one round given as bare identified samples — the
    /// batch-friendly entry point for producers that never build a
    /// [`RoundOutcome`] (e.g. the sharded world simulator merging
    /// thousands of concurrent rounds).
    ///
    /// Applies the same per-round arbitration as [`RangingSession::ingest`]:
    /// at most one sample per responder ID is kept (the strongest by
    /// amplitude), and the round counts once toward every availability
    /// denominator. An empty iterator still counts as a (responder-less)
    /// completed round.
    pub fn ingest_round_samples(&mut self, samples: impl IntoIterator<Item = RoundSample>) {
        self.rounds += 1;
        let mut best: BTreeMap<u32, RoundSample> = BTreeMap::new();
        for sample in samples {
            let slot = best.entry(sample.id).or_insert(sample);
            if sample.amplitude > slot.amplitude {
                *slot = sample;
            }
        }
        for (id, sample) in best {
            self.samples.entry(id).or_default().push(sample.distance_m);
        }
    }

    /// Ingests one *failed* round (timeout, undecodable window).
    ///
    /// The round still counts toward every responder's availability
    /// denominator — a session degraded by faults reports honest
    /// availability instead of silently shrinking its baseline.
    pub fn ingest_failure(&mut self, _error: &RangingError) {
        self.rounds += 1;
        self.failed += 1;
    }

    /// Raw samples recorded for a responder.
    pub fn samples_for(&self, id: u32) -> &[f64] {
        self.samples.get(&id).map_or(&[], Vec::as_slice)
    }

    /// Aggregated statistics for every responder seen this session,
    /// ordered by ID.
    pub fn responder_stats(&self) -> Vec<ResponderStats> {
        self.samples
            .iter()
            .map(|(&id, samples)| {
                let median = stats::median(samples);
                // Scaled MAD: a robust σ estimate (1.4826 × MAD for
                // normally distributed errors).
                let deviations: Vec<f64> = samples.iter().map(|s| (s - median).abs()).collect();
                let mad_sigma = 1.4826 * stats::median(&deviations);
                let limit = if mad_sigma > 0.0 {
                    self.outlier_threshold * mad_sigma
                } else {
                    f64::INFINITY
                };
                let accepted: Vec<f64> = samples
                    .iter()
                    .copied()
                    .filter(|s| (s - median).abs() <= limit)
                    .collect();
                let rejected = samples.len() - accepted.len();
                ResponderStats {
                    id,
                    distance_m: stats::median(&accepted),
                    spread_m: mad_sigma,
                    accepted: accepted.len(),
                    rejected,
                    availability: samples.len() as f64 / self.rounds.max(1) as f64,
                }
            })
            .collect()
    }

    /// The aggregated distance for one responder, if seen.
    pub fn distance_for(&self, id: u32) -> Option<f64> {
        self.responder_stats()
            .into_iter()
            .find(|s| s.id == id)
            .map(|s| s.distance_m)
    }
}

impl Default for RangingSession {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CombinedScheme, ConcurrentConfig, ConcurrentEngine, SlotPlan};
    use uwb_channel::ChannelModel;
    use uwb_netsim::{NodeConfig, SimConfig, Simulator};

    #[test]
    fn aggregation_beats_single_round_accuracy() {
        // 20 rounds: the median non-anchor distance beats the typical
        // single-round TX-grid error.
        let scheme = CombinedScheme::new(SlotPlan::new(4).unwrap(), 1).unwrap();
        let mut sim = Simulator::new(ChannelModel::free_space(), SimConfig::default(), 31);
        let initiator = sim.add_node(NodeConfig::at(0.0, 0.0));
        let r0 = sim.add_node(NodeConfig::at(4.0, 0.0));
        let r1 = sim.add_node(
            NodeConfig::at(0.0, 9.0).with_pulse_shape(scheme.assign(1).unwrap().register),
        );
        let config = ConcurrentConfig::new(scheme).with_rounds(20);
        let mut engine =
            ConcurrentEngine::new(initiator, vec![(r0, 0), (r1, 1)], config, 31).unwrap();
        sim.run(&mut engine, 1.0);

        let mut session = RangingSession::new();
        for o in &engine.outcomes {
            session.ingest(o);
        }
        assert_eq!(session.rounds(), 20);
        let stats = session.responder_stats();
        assert_eq!(stats.len(), 2);
        let far = stats.iter().find(|s| s.id == 1).unwrap();
        assert!(
            (far.distance_m - 9.0).abs() < 0.5,
            "aggregated {} m",
            far.distance_m
        );
        assert!(far.availability > 0.9, "availability {}", far.availability);
    }

    #[test]
    fn batch_samples_match_outcome_ingestion() {
        // Same data through both entry points → identical aggregates.
        let mut via_batch = RangingSession::new();
        via_batch.ingest_round_samples([
            RoundSample {
                id: 3,
                distance_m: 7.0,
                amplitude: 0.2,
            },
            // Duplicate ID: the stronger sample must win.
            RoundSample {
                id: 3,
                distance_m: 9.0,
                amplitude: 0.5,
            },
            RoundSample {
                id: 1,
                distance_m: 4.0,
                amplitude: 0.1,
            },
        ]);
        assert_eq!(via_batch.rounds(), 1);
        assert_eq!(via_batch.samples_for(3), &[9.0]);
        assert_eq!(via_batch.samples_for(1), &[4.0]);
        // An empty round still counts toward availability denominators.
        via_batch.ingest_round_samples([]);
        assert_eq!(via_batch.rounds(), 2);
        assert_eq!(via_batch.failed(), 0);
        let stats = via_batch.responder_stats();
        assert!((stats[1].availability - 0.5).abs() < 1e-12);
    }

    #[test]
    fn outliers_are_rejected() {
        let mut session = RangingSession::new();
        // Hand-craft samples: tight cluster plus one wild value.
        session
            .samples
            .insert(7, vec![5.0, 5.1, 4.9, 5.05, 4.95, 25.0]);
        session.rounds = 6;
        let stats = session.responder_stats();
        let s = &stats[0];
        assert_eq!(s.rejected, 1);
        assert_eq!(s.accepted, 5);
        assert!((s.distance_m - 5.0).abs() < 0.1, "{}", s.distance_m);
    }

    #[test]
    fn identical_samples_have_zero_spread_and_no_rejection() {
        let mut session = RangingSession::new();
        session.samples.insert(1, vec![3.0; 10]);
        session.rounds = 10;
        let s = &session.responder_stats()[0];
        assert_eq!(s.spread_m, 0.0);
        assert_eq!(s.rejected, 0);
        assert_eq!(s.distance_m, 3.0);
    }

    #[test]
    fn availability_reflects_missed_rounds() {
        let mut session = RangingSession::new();
        session.samples.insert(2, vec![4.0, 4.1]);
        session.rounds = 10;
        let s = &session.responder_stats()[0];
        assert!((s.availability - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_session_reports_nothing() {
        let session = RangingSession::new();
        assert!(session.responder_stats().is_empty());
        assert_eq!(session.distance_for(0), None);
        assert!(session.samples_for(3).is_empty());
    }

    #[test]
    fn rejects_bad_threshold() {
        let mut session = RangingSession::new();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = session.set_outlier_threshold(bad).unwrap_err();
            assert!(matches!(
                err,
                crate::RangingError::InvalidParameter {
                    name: "outlier_threshold",
                    ..
                }
            ));
        }
        assert!(session.set_outlier_threshold(2.5).is_ok());
    }

    #[test]
    fn failed_rounds_degrade_availability_and_success_rate() {
        let mut session = RangingSession::new();
        assert_eq!(session.success_rate(), 1.0);
        session.samples.insert(2, vec![4.0, 4.1]);
        session.rounds = 2;
        for _ in 0..2 {
            session.ingest_failure(&crate::RangingError::RoundTimeout);
        }
        assert_eq!(session.rounds(), 4);
        assert_eq!(session.completed(), 2);
        assert_eq!(session.failed(), 2);
        assert!((session.success_rate() - 0.5).abs() < 1e-12);
        // Availability counts failed rounds in the denominator.
        let s = &session.responder_stats()[0];
        assert!((s.availability - 0.5).abs() < 1e-12);
    }
}
