//! # concurrent-ranging — practical concurrent ranging with UWB radios
//!
//! A faithful implementation of *Großwindhager, Boano, Rath, Römer:
//! "Concurrent Ranging with Ultra-Wideband Radios: From Experimental
//! Evidence to a Practical Solution" (ICDCS 2018)*, running on a
//! physics-level DW1000 + indoor-channel + network simulator instead of
//! radio hardware.
//!
//! Classical two-way ranging needs `N·(N−1)` messages to measure all
//! distances in an `N`-node network. Concurrent ranging collapses this: an
//! initiator broadcasts one *INIT*, every responder replies *simultaneously*
//! after a fixed delay, and all responses appear as separable pulses in the
//! initiator's channel impulse response. This crate provides the four
//! techniques that turn the idea into a usable system:
//!
//! | Paper section | Module | Technique |
//! |---|---|---|
//! | Sect. IV | [`detection::SearchSubtractDetector`] | amplitude-independent response detection (search-and-subtract matched filtering) |
//! | Sect. V | [`detection::DetectionTemplate`] bank | responder identification via pulse shaping (`TC_PGDELAY`) |
//! | Sect. VI | [`detection::ThresholdDetector`] | overlap study vs. the threshold baseline |
//! | Sect. VII | [`SlotPlan`] | response position modulation |
//! | Sect. VIII | [`CombinedScheme`] | RPM × pulse shaping, `N_max = N_RPM·N_PS` |
//!
//! Protocol engines ([`SsTwrEngine`], [`ConcurrentEngine`]) run on
//! [`uwb_netsim::Simulator`] and face realistic artefacts: 8 ns delayed-TX
//! quantization, drifting clocks, RX timestamp noise, multipath and
//! preamble capture.
//!
//! # Examples
//!
//! One concurrent round with three responders:
//!
//! ```
//! use concurrent_ranging::{
//!     CombinedScheme, ConcurrentConfig, ConcurrentEngine, SlotPlan,
//! };
//! use uwb_channel::ChannelModel;
//! use uwb_netsim::{NodeConfig, SimConfig, Simulator};
//!
//! # fn main() -> Result<(), concurrent_ranging::RangingError> {
//! let scheme = CombinedScheme::new(SlotPlan::new(4)?, 1)?;
//! let mut sim = Simulator::new(ChannelModel::free_space(), SimConfig::default(), 1);
//! let initiator = sim.add_node(NodeConfig::at(0.0, 0.0));
//! let responders: Vec<_> = [3.0, 6.0, 10.0]
//!     .iter()
//!     .enumerate()
//!     .map(|(i, &x)| (sim.add_node(NodeConfig::at(x, 0.0)), i as u32))
//!     .collect();
//! let mut engine =
//!     ConcurrentEngine::new(initiator, responders, ConcurrentConfig::new(scheme), 1)?;
//! sim.run(&mut engine, 1.0);
//! let outcome = &engine.outcomes[0];
//! assert_eq!(outcome.estimates.len(), 3);
//! // The anchor distance is TWR-exact; the others carry the DW1000's
//! // ±8 ns delayed-TX truncation (≤ 1.2 m), which the paper declares a
//! // hardware limit (Sect. III).
//! assert!((outcome.estimates[0].distance_m - 3.0).abs() < 0.1);
//! assert!((outcome.estimates[2].distance_m - 10.0).abs() < 1.3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
pub mod cir_features;
mod concurrent;
mod cooperative;
pub mod detection;
mod dstwr;
mod error;
mod estimate;
pub(crate) mod localization;
mod network;
pub mod pipeline;
mod protocol;
mod rpm;
mod session;
mod tracking;
mod twr;

pub use assignment::{CombinedScheme, ResponderAssignment};
pub use concurrent::{
    ConcurrentConfig, ConcurrentEngine, ResponderEstimate, ResponderHealth, ResponderStatus,
    RoundOutcome,
};
pub use cooperative::{solve_cooperative, CooperativeFix, NodeRole};
pub use dstwr::{DsTwrEngine, DsTwrMeasurement, DsTwrTimestamps};
pub use error::RangingError;
pub use estimate::{concurrent_distance_m, concurrent_distance_with_rpm_m, TwrTimestamps};
pub use localization::{multilaterate, PositionFix, RangeToAnchor};
pub use network::{DistanceMatrix, NetworkRanging, TrafficCounter};
pub use pipeline::{
    DetectStage, RangingPipeline, RenderStage, RoundContext, RoundProgram, ShapeClassifyStage,
    SlotDecodeStage, SlotReference, SolveStage,
};
pub use protocol::{RangingMessage, INIT_PAYLOAD_BYTES, RESP_PAYLOAD_BYTES};
pub use rpm::{SlotPlan, DELTA_MAX_S};
pub use session::{RangingSession, ResponderStats, RoundSample};
pub use tracking::{PositionTracker, TrackState};
pub use twr::{SsTwrEngine, TwrMeasurement};
