//! Error types for the concurrent-ranging library.

use std::error::Error;
use std::fmt;

/// Errors produced by ranging protocols and detection algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RangingError {
    /// A detection run was asked for zero responses.
    NoResponsesRequested,
    /// The detector could not find the requested number of responses.
    InsufficientResponses {
        /// Responses requested.
        requested: usize,
        /// Responses found.
        found: usize,
    },
    /// No template bank was supplied to a detector that needs one.
    EmptyTemplateBank,
    /// An invalid upsampling factor.
    InvalidUpsampling {
        /// The rejected factor.
        factor: usize,
    },
    /// A concurrent round completed without a decodable response payload,
    /// so no `d_TWR` anchor is available (Eq. 2).
    NoDecodablePayload,
    /// A ranging round timed out without the expected reception.
    RoundTimeout,
    /// A slot/shape assignment was requested for an ID beyond capacity.
    IdBeyondCapacity {
        /// The rejected responder ID.
        id: u32,
        /// Maximum supported responders.
        capacity: u32,
    },
    /// Invalid scheme parameters (zero slots or zero pulse shapes).
    InvalidSchemeParameters,
    /// An underlying DSP failure (should not occur with validated inputs).
    Dsp(uwb_dsp::DspError),
    /// An underlying radio-model failure.
    Radio(uwb_radio::RadioError),
}

impl fmt::Display for RangingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoResponsesRequested => write!(f, "zero responses requested from detector"),
            Self::InsufficientResponses { requested, found } => {
                write!(
                    f,
                    "detector found {found} of {requested} requested responses"
                )
            }
            Self::EmptyTemplateBank => write!(f, "template bank is empty"),
            Self::InvalidUpsampling { factor } => {
                write!(f, "upsampling factor {factor} is invalid")
            }
            Self::NoDecodablePayload => {
                write!(f, "no decodable response payload; d_TWR anchor unavailable")
            }
            Self::RoundTimeout => write!(f, "ranging round timed out"),
            Self::IdBeyondCapacity { id, capacity } => {
                write!(f, "responder id {id} exceeds scheme capacity {capacity}")
            }
            Self::InvalidSchemeParameters => {
                write!(f, "scheme requires at least one slot and one pulse shape")
            }
            Self::Dsp(e) => write!(f, "dsp error: {e}"),
            Self::Radio(e) => write!(f, "radio error: {e}"),
        }
    }
}

impl Error for RangingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Dsp(e) => Some(e),
            Self::Radio(e) => Some(e),
            _ => None,
        }
    }
}

impl From<uwb_dsp::DspError> for RangingError {
    fn from(e: uwb_dsp::DspError) -> Self {
        Self::Dsp(e)
    }
}

impl From<uwb_radio::RadioError> for RangingError {
    fn from(e: uwb_radio::RadioError) -> Self {
        Self::Radio(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = RangingError::InsufficientResponses {
            requested: 3,
            found: 1,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('1'));
    }

    #[test]
    fn source_chains_for_wrapped_errors() {
        let e = RangingError::from(uwb_dsp::DspError::EmptyInput);
        assert!(e.source().is_some());
        assert!(RangingError::RoundTimeout.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RangingError>();
    }
}
