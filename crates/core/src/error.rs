//! Error types for the concurrent-ranging library.

use std::error::Error;
use std::fmt;

/// Errors produced by ranging protocols and detection algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RangingError {
    /// A detection run was asked for zero responses.
    NoResponsesRequested,
    /// The detector could not find the requested number of responses.
    InsufficientResponses {
        /// Responses requested.
        requested: usize,
        /// Responses found.
        found: usize,
    },
    /// No template bank was supplied to a detector that needs one.
    EmptyTemplateBank,
    /// An invalid upsampling factor.
    InvalidUpsampling {
        /// The rejected factor.
        factor: usize,
    },
    /// A concurrent round completed without a decodable response payload,
    /// so no `d_TWR` anchor is available (Eq. 2).
    NoDecodablePayload,
    /// A ranging round timed out without the expected reception.
    RoundTimeout,
    /// A slot/shape assignment was requested for an ID beyond capacity.
    IdBeyondCapacity {
        /// The rejected responder ID.
        id: u32,
        /// Maximum supported responders.
        capacity: u32,
    },
    /// Invalid scheme parameters (zero slots or zero pulse shapes).
    InvalidSchemeParameters,
    /// A slot index beyond the plan's slot count.
    SlotOutOfRange {
        /// The rejected slot index.
        slot: usize,
        /// Number of slots in the plan.
        n_slots: usize,
    },
    /// A caller-supplied numeric parameter was rejected (non-finite, out
    /// of range).
    InvalidParameter {
        /// The parameter's name.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// An underlying DSP failure (should not occur with validated inputs).
    Dsp(uwb_dsp::DspError),
    /// An underlying radio-model failure.
    Radio(uwb_radio::RadioError),
    /// An invalid fault-injection plan parameter.
    Fault(uwb_faults::FaultError),
}

impl fmt::Display for RangingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoResponsesRequested => write!(f, "zero responses requested from detector"),
            Self::InsufficientResponses { requested, found } => {
                write!(
                    f,
                    "detector found {found} of {requested} requested responses"
                )
            }
            Self::EmptyTemplateBank => write!(f, "template bank is empty"),
            Self::InvalidUpsampling { factor } => {
                write!(f, "upsampling factor {factor} is invalid")
            }
            Self::NoDecodablePayload => {
                write!(f, "no decodable response payload; d_TWR anchor unavailable")
            }
            Self::RoundTimeout => write!(f, "ranging round timed out"),
            Self::IdBeyondCapacity { id, capacity } => {
                write!(f, "responder id {id} exceeds scheme capacity {capacity}")
            }
            Self::InvalidSchemeParameters => {
                write!(f, "scheme requires at least one slot and one pulse shape")
            }
            Self::SlotOutOfRange { slot, n_slots } => {
                write!(f, "slot {slot} out of range (n_slots = {n_slots})")
            }
            Self::InvalidParameter { name, value } => {
                write!(f, "invalid parameter `{name}` = {value}")
            }
            Self::Dsp(e) => write!(f, "dsp error: {e}"),
            Self::Radio(e) => write!(f, "radio error: {e}"),
            Self::Fault(e) => write!(f, "fault-plan error: {e}"),
        }
    }
}

impl Error for RangingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Dsp(e) => Some(e),
            Self::Radio(e) => Some(e),
            Self::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<uwb_dsp::DspError> for RangingError {
    fn from(e: uwb_dsp::DspError) -> Self {
        Self::Dsp(e)
    }
}

impl From<uwb_radio::RadioError> for RangingError {
    fn from(e: uwb_radio::RadioError) -> Self {
        Self::Radio(e)
    }
}

impl From<uwb_faults::FaultError> for RangingError {
    fn from(e: uwb_faults::FaultError) -> Self {
        Self::Fault(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = RangingError::InsufficientResponses {
            requested: 3,
            found: 1,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('1'));
    }

    #[test]
    fn source_chains_for_wrapped_errors() {
        let e = RangingError::from(uwb_dsp::DspError::EmptyInput);
        assert!(e.source().is_some());
        assert!(RangingError::RoundTimeout.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RangingError>();
    }
}
