//! Network-wide concurrent ranging: every node learns its distance to
//! every other node.
//!
//! The paper's headline comparison (Sect. III) is network-scale: all-pairs
//! SS-TWR costs `N·(N−1)` messages, while concurrent ranging needs one
//! round per initiator — `N` broadcasts total, each answered by one merged
//! reception. This module provides the coordinator that actually runs that
//! schedule on the simulator: a TDMA rotation where each node takes one
//! turn as initiator while all others respond, producing the full distance
//! matrix.

use crate::assignment::CombinedScheme;
use crate::concurrent::{ConcurrentConfig, ConcurrentEngine, RoundOutcome};
use crate::error::RangingError;
use crate::protocol::RangingMessage;
use uwb_netsim::{NodeApi, NodeId, Protocol, Reception};

/// The symmetric distance matrix produced by a full network round.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    /// Row-major `n × n`; `None` where a pair was not resolved.
    entries: Vec<Option<f64>>,
}

impl DistanceMatrix {
    /// An empty `n × n` matrix with no pairs resolved.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            entries: vec![None; n * n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for an empty (zero-node) matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The measured distance from node `a` to node `b` (as estimated by
    /// `a`'s initiator round), if resolved.
    pub fn get(&self, a: usize, b: usize) -> Option<f64> {
        self.entries.get(a * self.n + b).copied().flatten()
    }

    fn set(&mut self, a: usize, b: usize, d: f64) {
        if a < self.n && b < self.n {
            self.entries[a * self.n + b] = Some(d);
        }
    }

    /// Sets an entry directly — for building matrices from external
    /// measurement sources (and in tests). Out-of-range indices are
    /// ignored.
    pub fn set_entry(&mut self, a: usize, b: usize, d: f64) {
        self.set(a, b, d);
    }

    /// Clears an entry directly (e.g. to inject measurement loss).
    /// Out-of-range indices are ignored.
    pub fn clear_entry(&mut self, a: usize, b: usize) {
        if a < self.n && b < self.n {
            self.entries[a * self.n + b] = None;
        }
    }

    /// Fraction of off-diagonal pairs resolved.
    pub fn coverage(&self) -> f64 {
        if self.n < 2 {
            return 1.0;
        }
        let resolved = (0..self.n)
            .flat_map(|a| (0..self.n).map(move |b| (a, b)))
            .filter(|&(a, b)| a != b && self.get(a, b).is_some())
            .count();
        resolved as f64 / (self.n * (self.n - 1)) as f64
    }

    /// Maximum asymmetry `|d(a→b) − d(b→a)|` over resolved pairs — a
    /// consistency diagnostic (both directions measure the same geometry).
    pub fn max_asymmetry_m(&self) -> f64 {
        let mut worst = 0.0_f64;
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                if let (Some(ab), Some(ba)) = (self.get(a, b), self.get(b, a)) {
                    worst = worst.max((ab - ba).abs());
                }
            }
        }
        worst
    }
}

/// Drives one full network ranging cycle: each node, in ID order, runs one
/// concurrent round as initiator; all other nodes respond with slot/shape
/// assignments derived from their *index among the responders* of that
/// round.
///
/// Use via [`NetworkRanging::run_cycle`], which owns the per-turn engines.
#[derive(Debug)]
pub struct NetworkRanging {
    scheme: CombinedScheme,
    config: ConcurrentConfig,
}

impl NetworkRanging {
    /// Creates a coordinator for networks of up to `scheme.capacity() + 1`
    /// nodes.
    pub fn new(scheme: CombinedScheme, config: ConcurrentConfig) -> Self {
        Self { scheme, config }
    }

    /// Runs one full cycle over `positions` (node `i` at `positions[i]`)
    /// in free space, returning the distance matrix and the per-turn
    /// outcomes.
    ///
    /// # Errors
    ///
    /// Returns an error when the network exceeds the scheme capacity or an
    /// engine cannot be constructed.
    pub fn run_cycle(
        &self,
        positions: &[uwb_channel::Point2],
        channel: &uwb_channel::ChannelModel,
        seed: u64,
    ) -> Result<(DistanceMatrix, Vec<RoundOutcome>), RangingError> {
        let n = positions.len();
        if n < 2 || (n - 1) as u32 > self.scheme.capacity() {
            return Err(RangingError::InvalidSchemeParameters);
        }
        let mut matrix = DistanceMatrix::new(n);
        let mut outcomes = Vec::with_capacity(n);

        for initiator_idx in 0..n {
            // Fresh simulator per turn (turns are serial in time anyway;
            // separate sims keep the RNG streams per-turn deterministic).
            let mut sim: uwb_netsim::Simulator<RangingMessage> = uwb_netsim::Simulator::new(
                channel.clone(),
                uwb_netsim::SimConfig::default(),
                seed.wrapping_add(initiator_idx as u64),
            );
            // Responder IDs are assigned by order-among-responders, a
            // convention every node can derive from the initiator's ID.
            let mut responder_nodes = Vec::new();
            let mut id_to_index = Vec::new();
            let mut initiator_node = None;
            for (idx, p) in positions.iter().enumerate() {
                if idx == initiator_idx {
                    initiator_node = Some(sim.add_node(uwb_netsim::NodeConfig::at(p.x, p.y)));
                } else {
                    let rid = id_to_index.len() as u32;
                    let register = self.scheme.assign(rid)?.register;
                    let node = sim
                        .add_node(uwb_netsim::NodeConfig::at(p.x, p.y).with_pulse_shape(register));
                    responder_nodes.push((node, rid));
                    id_to_index.push(idx);
                }
            }
            // Exactly one round per turn regardless of the caller's
            // `rounds` setting — the cycle is the repetition unit here.
            let turn_config = self.config.clone().with_rounds(1);
            let mut engine = ConcurrentEngine::new(
                initiator_node.expect("initiator added"),
                responder_nodes,
                turn_config,
                seed.wrapping_add(1000 + initiator_idx as u64),
            )?;
            sim.run(&mut engine, 1.0);

            if let Some(outcome) = engine.outcomes.into_iter().next() {
                for estimate in &outcome.estimates {
                    if let Some(rid) = estimate.id {
                        if let Some(&other) = id_to_index.get(rid as usize) {
                            matrix.set(initiator_idx, other, estimate.distance_m);
                        }
                    }
                }
                outcomes.push(outcome);
            }
        }
        Ok((matrix, outcomes))
    }
}

/// A passive observer protocol used in tests to count network traffic.
#[derive(Debug, Default)]
pub struct TrafficCounter {
    /// Receptions seen per node.
    pub receptions: Vec<(NodeId, usize)>,
}

impl Protocol<RangingMessage> for TrafficCounter {
    fn on_start(&mut self, _node: NodeId, _api: &mut NodeApi<RangingMessage>) {}
    fn on_reception(
        &mut self,
        node: NodeId,
        reception: &Reception<RangingMessage>,
        _api: &mut NodeApi<RangingMessage>,
    ) {
        self.receptions.push((node, reception.frames.len()));
    }
    fn on_timer(&mut self, _node: NodeId, _token: u64, _api: &mut NodeApi<RangingMessage>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpm::SlotPlan;
    use uwb_channel::{ChannelModel, Point2};

    fn positions(n: usize) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                let angle = i as f64 * 2.1;
                let radius = 4.0 + 1.3 * i as f64;
                Point2::new(radius * angle.cos(), radius * angle.sin())
            })
            .collect()
    }

    #[test]
    fn full_cycle_fills_the_distance_matrix() {
        let scheme = CombinedScheme::new(SlotPlan::new(4).unwrap(), 2).unwrap();
        let config = ConcurrentConfig::new(scheme.clone()).with_mpc_guard();
        let coordinator = NetworkRanging::new(scheme, config);
        let pos = positions(5);
        let (matrix, outcomes) = coordinator
            .run_cycle(&pos, &ChannelModel::free_space(), 7)
            .unwrap();
        assert_eq!(outcomes.len(), 5);
        assert!(matrix.coverage() > 0.9, "coverage {}", matrix.coverage());
        // Estimates match geometry within the TX-grid budget.
        for a in 0..5 {
            for b in 0..5 {
                if a == b {
                    continue;
                }
                if let Some(d) = matrix.get(a, b) {
                    let truth = pos[a].distance_to(pos[b]);
                    assert!((d - truth).abs() < 1.3, "d({a},{b}) = {d}, truth {truth}");
                }
            }
        }
    }

    #[test]
    fn matrix_is_roughly_symmetric() {
        let scheme = CombinedScheme::new(SlotPlan::new(4).unwrap(), 2).unwrap();
        let config = ConcurrentConfig::new(scheme.clone()).with_mpc_guard();
        let coordinator = NetworkRanging::new(scheme, config);
        let (matrix, _) = coordinator
            .run_cycle(&positions(4), &ChannelModel::free_space(), 11)
            .unwrap();
        // Both directions carry independent TX-grid errors: bounded by
        // twice the single-direction budget.
        assert!(
            matrix.max_asymmetry_m() < 2.6,
            "{}",
            matrix.max_asymmetry_m()
        );
    }

    #[test]
    fn rejects_networks_beyond_capacity() {
        let scheme = CombinedScheme::new(SlotPlan::new(2).unwrap(), 1).unwrap(); // capacity 2
        let config = ConcurrentConfig::new(scheme.clone());
        let coordinator = NetworkRanging::new(scheme, config);
        let result = coordinator.run_cycle(&positions(5), &ChannelModel::free_space(), 1);
        assert!(result.is_err());
    }

    #[test]
    fn distance_matrix_accessors() {
        let mut m = DistanceMatrix::new(3);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.get(0, 1), None);
        m.set(0, 1, 5.0);
        m.set(1, 0, 5.2);
        assert_eq!(m.get(0, 1), Some(5.0));
        assert!((m.max_asymmetry_m() - 0.2).abs() < 1e-12);
        assert!((m.coverage() - 2.0 / 6.0).abs() < 1e-12);
        // Out-of-range reads are None.
        assert_eq!(m.get(7, 0), None);
    }
}
