//! CIR feature extraction and LOS/NLOS classification.
//!
//! The paper notes the CIR "can be used to detect a degrading channel as
//! well as any change of the surrounding environment" (Sect. II) and
//! defers NLOS handling to future work (Sect. IX). This module provides
//! that machinery: the standard channel-statistics features used by the
//! UWB literature (first-path-to-peak ratio, rise time, RMS delay spread,
//! kurtosis) and a rule-based LOS/NLOS classifier over them — letting a
//! deployment flag responder estimates whose direct path looks obstructed.

use uwb_radio::Cir;

/// Channel statistics extracted from one CIR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CirFeatures {
    /// Leading-edge (first path) tap index.
    pub first_path_tap: usize,
    /// Strongest tap index.
    pub peak_tap: usize,
    /// First-path amplitude divided by peak amplitude, in `[0, 1]`. Near 1
    /// for line-of-sight (the direct path *is* the peak), small when the
    /// direct path is attenuated below later reflections.
    pub first_path_to_peak: f64,
    /// Rise time from leading edge to peak, seconds. LOS channels rise
    /// within a pulse width; obstructed channels build up slowly.
    pub rise_time_s: f64,
    /// RMS delay spread of the power-weighted delay profile, seconds.
    pub rms_delay_spread_s: f64,
    /// Kurtosis of the tap-magnitude distribution: high for one dominant
    /// path, lower for diffuse energy.
    pub kurtosis: f64,
    /// Peak SNR estimate in dB.
    pub peak_snr_db: f64,
}

/// Channel condition verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelCondition {
    /// Clear line of sight: direct path dominates.
    LineOfSight,
    /// Obstructed: the direct path is attenuated or delayed relative to
    /// reflections — range estimates are likely biased late.
    NonLineOfSight,
}

/// Extracts channel features from a CIR.
///
/// The leading edge is detected at `edge_factor` times the noise floor
/// (6 is a robust default).
///
/// Returns `None` for an all-zero CIR (nothing received).
pub fn extract_features(cir: &Cir, edge_factor: f64) -> Option<CirFeatures> {
    let mags = cir.magnitudes();
    let peak_tap = cir.strongest_tap()?;
    let peak = mags[peak_tap];
    let floor = cir.noise_floor();
    let threshold = (floor * edge_factor).max(peak * 0.05);
    let first_path_tap = uwb_dsp::leading_edge(&mags, threshold)?;
    let ts = cir.sample_period_s();

    // Power-weighted mean excess delay and RMS spread over taps clearly
    // above the noise floor (3× gate), so residual noise across the ~1 µs
    // window cannot dominate the spread.
    let gate = 3.0 * floor;
    let mut p_total = 0.0;
    let mut mean_delay = 0.0;
    for (i, &m) in mags.iter().enumerate().skip(first_path_tap) {
        if m > gate {
            let p = m * m;
            p_total += p;
            mean_delay += p * (i - first_path_tap) as f64 * ts;
        }
    }
    if p_total <= 0.0 {
        return None;
    }
    mean_delay /= p_total;
    let mut var = 0.0;
    for (i, &m) in mags.iter().enumerate().skip(first_path_tap) {
        if m > gate {
            let p = m * m;
            let d = (i - first_path_tap) as f64 * ts - mean_delay;
            var += p * d * d;
        }
    }
    let rms_delay_spread_s = (var / p_total).sqrt();

    // Kurtosis of the magnitude samples.
    let n = mags.len() as f64;
    let mean = mags.iter().sum::<f64>() / n;
    let m2 = mags.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / n;
    let m4 = mags.iter().map(|m| (m - mean).powi(4)).sum::<f64>() / n;
    let kurtosis = if m2 > 0.0 { m4 / (m2 * m2) } else { 0.0 };

    // First-path amplitude: the local maximum within one pulse main lobe
    // after the leading edge (the edge tap itself sits on the rising
    // slope).
    let fp_window_end = (first_path_tap + 3).min(mags.len());
    let first_path_amp = mags[first_path_tap..fp_window_end]
        .iter()
        .cloned()
        .fold(0.0, f64::max);

    Some(CirFeatures {
        first_path_tap,
        peak_tap,
        first_path_to_peak: (first_path_amp / peak).min(1.0),
        rise_time_s: peak_tap.saturating_sub(first_path_tap) as f64 * ts,
        rms_delay_spread_s,
        kurtosis,
        peak_snr_db: cir.peak_snr_db(),
    })
}

/// A rule-based LOS/NLOS classifier over [`CirFeatures`], using the
/// canonical indicators from the UWB channel-identification literature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NlosClassifier {
    /// Classify NLOS when the first-path-to-peak ratio falls below this.
    pub min_first_path_ratio: f64,
    /// Classify NLOS when the rise time exceeds this (seconds).
    pub max_rise_time_s: f64,
    /// Leading-edge detection factor over the noise floor.
    pub edge_factor: f64,
}

impl Default for NlosClassifier {
    fn default() -> Self {
        Self {
            min_first_path_ratio: 0.55,
            max_rise_time_s: 6e-9,
            edge_factor: 6.0,
        }
    }
}

impl NlosClassifier {
    /// Classifies a CIR. Returns `None` when no signal is present.
    pub fn classify(&self, cir: &Cir) -> Option<ChannelCondition> {
        let f = extract_features(cir, self.edge_factor)?;
        Some(self.classify_features(&f))
    }

    /// Classifies already-extracted features.
    pub fn classify_features(&self, f: &CirFeatures) -> ChannelCondition {
        if f.first_path_to_peak < self.min_first_path_ratio || f.rise_time_s > self.max_rise_time_s
        {
            ChannelCondition::NonLineOfSight
        } else {
            ChannelCondition::LineOfSight
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uwb_channel::{ChannelConfig, ChannelModel, CirSynthesizer, NlosConfig, Point2, Room};
    use uwb_radio::{Prf, PulseShape, RadioConfig};

    fn render_cir(nlos_db: f64, seed: u64) -> Cir {
        let mut config = ChannelConfig {
            max_reflection_order: 1,
            ..ChannelConfig::default()
        };
        if nlos_db > 0.0 {
            // Through-obstacle propagation adds little delay (~1–2 ns for
            // a person or door) while attenuating strongly.
            config.nlos = Some(NlosConfig {
                extra_loss_db: nlos_db,
                excess_delay_ns: 0.1 * nlos_db,
            });
        }
        // A realistically reflective office (plaster-ish walls), with the
        // link placed asymmetrically so first-order reflections do not
        // pile up coherently.
        let model = ChannelModel::with_config(Some(Room::rectangular(12.0, 6.0, 0.45)), config);
        let pulse = PulseShape::from_config(&RadioConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let arrivals = model.propagate(
            Point2::new(1.5, 2.2),
            Point2::new(9.0, 3.4),
            pulse,
            0.0462,
            &mut rng,
        );
        let strongest = arrivals
            .iter()
            .map(|a| a.amplitude.abs())
            .fold(0.0, f64::max);
        CirSynthesizer::new(Prf::Mhz64)
            .with_window_start(arrivals[0].delay_s - 30.0 * uwb_radio::CIR_SAMPLE_PERIOD_S)
            .with_noise_sigma(strongest * 10f64.powf(-30.0 / 20.0))
            .render(&arrivals, &mut rng)
    }

    #[test]
    fn features_of_clean_los_channel() {
        let cir = render_cir(0.0, 1);
        let f = extract_features(&cir, 6.0).expect("signal present");
        // Direct path at the configured tap 30, and it is the peak.
        assert!((28..=32).contains(&f.first_path_tap), "{f:?}");
        assert!(f.first_path_to_peak > 0.8, "{f:?}");
        assert!(f.rise_time_s < 4e-9, "{f:?}");
        assert!(f.peak_snr_db > 20.0);
    }

    #[test]
    fn blocked_path_shifts_features() {
        let los = extract_features(&render_cir(0.0, 2), 6.0).unwrap();
        let nlos = extract_features(&render_cir(18.0, 2), 6.0).unwrap();
        // With the direct path 18 dB down, a reflection dominates.
        assert!(nlos.first_path_to_peak < los.first_path_to_peak);
        assert!(nlos.rise_time_s > los.rise_time_s);
    }

    #[test]
    fn classifier_separates_los_from_nlos() {
        let clf = NlosClassifier::default();
        let mut correct = 0;
        let trials = 20;
        for seed in 0..trials {
            if clf.classify(&render_cir(0.0, 100 + seed)) == Some(ChannelCondition::LineOfSight) {
                correct += 1;
            }
            if clf.classify(&render_cir(18.0, 200 + seed)) == Some(ChannelCondition::NonLineOfSight)
            {
                correct += 1;
            }
        }
        let accuracy = correct as f64 / (2 * trials) as f64;
        assert!(accuracy >= 0.85, "accuracy {accuracy}");
    }

    #[test]
    fn empty_cir_yields_none() {
        let cir = Cir::zeroed(Prf::Mhz64);
        assert!(extract_features(&cir, 6.0).is_none());
        assert!(NlosClassifier::default().classify(&cir).is_none());
    }

    #[test]
    fn kurtosis_higher_for_single_dominant_path() {
        use uwb_channel::Arrival;
        use uwb_dsp::Complex64;
        let pulse = PulseShape::from_config(&RadioConfig::default());
        let mut rng = StdRng::seed_from_u64(9);
        let single = CirSynthesizer::new(Prf::Mhz64)
            .with_noise_sigma(1e-4)
            .render(
                &[Arrival {
                    delay_s: 100e-9,
                    amplitude: Complex64::from_real(1.0),
                    pulse,
                }],
                &mut rng,
            );
        let spread: Vec<Arrival> = (0..40)
            .map(|i| Arrival {
                delay_s: (100.0 + 5.0 * i as f64) * 1e-9,
                amplitude: Complex64::from_polar(0.16, i as f64),
                pulse,
            })
            .collect();
        let diffuse = CirSynthesizer::new(Prf::Mhz64)
            .with_noise_sigma(1e-4)
            .render(&spread, &mut rng);
        let k_single = extract_features(&single, 6.0).unwrap().kurtosis;
        let k_diffuse = extract_features(&diffuse, 6.0).unwrap().kurtosis;
        assert!(k_single > k_diffuse, "{k_single} vs {k_diffuse}");
    }
}
