//! Response position modulation (the paper's Sect. VII).
//!
//! Each responder adds an individual delay `δ_i = n_RPM · δ` to the common
//! response delay `Δ_RESP`, spreading responses (and their multipath tails)
//! across the ≈1.017 µs CIR window so that strong multipath components of
//! one responder cannot mask another responder's direct path.

use crate::error::RangingError;
use uwb_obs::Value;
use uwb_radio::SPEED_OF_LIGHT;

/// Maximum usable CIR offset: the accumulator spans 1016 samples of
/// ≈1.0016 ns → δ_max ≈ 1017 ns (paper, Sect. VII).
pub const DELTA_MAX_S: f64 = 1016.0 * uwb_radio::CIR_SAMPLE_PERIOD_S;

/// A slot plan: how the CIR window is divided among responders.
///
/// # Examples
///
/// ```
/// use concurrent_ranging::SlotPlan;
///
/// // 4 slots over the full window (the paper's r_max = 75 m example).
/// let plan = SlotPlan::new(4)?;
/// assert!((plan.slot_spacing_s() * 1e9 - 254.4).abs() < 1.0);
/// # Ok::<(), concurrent_ranging::RangingError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotPlan {
    n_slots: usize,
    slot_spacing_s: f64,
}

impl SlotPlan {
    /// Divides the CIR window evenly into `n_slots` slots.
    ///
    /// # Errors
    ///
    /// Returns [`RangingError::InvalidSchemeParameters`] for zero slots.
    pub fn new(n_slots: usize) -> Result<Self, RangingError> {
        if n_slots == 0 {
            return Err(RangingError::InvalidSchemeParameters);
        }
        Ok(Self {
            n_slots,
            slot_spacing_s: DELTA_MAX_S / n_slots as f64,
        })
    }

    /// A plan with an explicit slot spacing (must fit at least one slot in
    /// the window).
    ///
    /// # Errors
    ///
    /// Returns [`RangingError::InvalidSchemeParameters`] when the spacing
    /// is non-positive or exceeds the CIR window.
    pub fn with_spacing(n_slots: usize, slot_spacing_s: f64) -> Result<Self, RangingError> {
        if n_slots == 0
            || !slot_spacing_s.is_finite()
            || slot_spacing_s <= 0.0
            || (n_slots as f64) * slot_spacing_s > DELTA_MAX_S + 1e-15
        {
            return Err(RangingError::InvalidSchemeParameters);
        }
        Ok(Self {
            n_slots,
            slot_spacing_s,
        })
    }

    /// Number of slots `N_RPM`.
    pub fn n_slots(&self) -> usize {
        self.n_slots
    }

    /// Slot spacing `δ` in seconds.
    pub fn slot_spacing_s(&self) -> f64 {
        self.slot_spacing_s
    }

    /// The additional response delay `δ_i = slot · δ` for a slot index.
    ///
    /// # Errors
    ///
    /// Returns [`RangingError::SlotOutOfRange`] when `slot >= n_slots`
    /// (an assignment bug that used to panic; callers now get a typed
    /// error they can surface or recover from).
    pub fn slot_delay_s(&self, slot: usize) -> Result<f64, RangingError> {
        if slot >= self.n_slots {
            return Err(RangingError::SlotOutOfRange {
                slot,
                n_slots: self.n_slots,
            });
        }
        Ok(slot as f64 * self.slot_spacing_s)
    }

    /// Guard band absorbing the ±8 ns delayed-TX jitter (plus timestamp
    /// noise) when mapping observed delays onto the slot grid.
    pub const DECODE_GUARD_S: f64 = 9e-9;

    /// Decodes which slot an observed CIR delay offset belongs to, given
    /// the anchor responder's slot and its SS-TWR distance.
    ///
    /// The observed offset of responder `k` relative to the anchor is
    /// `(slot_k − slot_a)·δ + 2(d_k − d_a)/c`. Since the initiator knows
    /// `d_a` (= `d_TWR` from the decoded payload), adding `2·d_a/c` turns
    /// the residual into the *absolute* round-trip time `2·d_k/c ∈
    /// [0, δ)` — valid whenever every responder is within the plan's
    /// [`SlotPlan::max_range_m`] — so floor semantics recover `slot_k`
    /// with the full slot budget. [`SlotPlan::DECODE_GUARD_S`] absorbs the
    /// delayed-TX jitter that can push the residual slightly negative.
    ///
    /// Returns `None` when the implied slot is outside the plan.
    pub fn decode_slot(
        &self,
        delay_offset_s: f64,
        anchor_slot: usize,
        anchor_distance_m: f64,
    ) -> Option<usize> {
        uwb_obs::profile::work("rpm.decode", 1);
        let absolute = delay_offset_s
            + 2.0 * anchor_distance_m.max(0.0) / SPEED_OF_LIGHT
            + Self::DECODE_GUARD_S;
        let steps = (absolute / self.slot_spacing_s).floor() as i64;
        let slot = anchor_slot as i64 + steps;
        let decoded = (0..self.n_slots as i64)
            .contains(&slot)
            .then_some(slot as usize);
        if uwb_obs::enabled() {
            uwb_obs::counter("rpm.decodes", 1);
            if decoded.is_none() {
                uwb_obs::counter("rpm.guard_violations", 1);
            }
            uwb_obs::event("rpm.decode", || {
                vec![
                    ("delay_offset_s", delay_offset_s.into()),
                    ("anchor_slot", anchor_slot.into()),
                    ("anchor_distance_m", anchor_distance_m.into()),
                    ("slot", Value::I64(decoded.map_or(-1, |s| s as i64))),
                    ("in_window", decoded.is_some().into()),
                ]
            });
        }
        decoded
    }

    /// The maximum one-way communication range (meters) for which responses
    /// within one slot cannot leak into the next: the round-trip delay
    /// spread `2·r/c` plus the channel delay spread must stay below `δ`.
    pub fn max_range_m(&self, delay_spread_s: f64) -> f64 {
        ((self.slot_spacing_s - delay_spread_s).max(0.0)) * SPEED_OF_LIGHT / 2.0
    }

    /// The number of non-overlapping slots supported for a given one-way
    /// range and channel delay spread (physically consistent version of the
    /// paper's `N_RPM = δ_max·c / r_max`; the paper's formula omits the
    /// round-trip factor of 2 — see DESIGN.md).
    pub fn supported_slots(max_range_m: f64, delay_spread_s: f64) -> usize {
        let needed = 2.0 * max_range_m / SPEED_OF_LIGHT + delay_spread_s;
        if needed <= 0.0 {
            return 0;
        }
        (DELTA_MAX_S / needed).floor() as usize
    }

    /// The paper's capacity formula `N_RPM = δ_max·c / r_max` (Sect. VIII),
    /// reproduced verbatim for the evaluation tables.
    pub fn paper_supported_slots(max_range_m: f64) -> usize {
        ((DELTA_MAX_S * SPEED_OF_LIGHT) / max_range_m).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_max_matches_paper() {
        // Paper: δ_max ≈ 1017 ns ≈ 307 m.
        assert!((DELTA_MAX_S * 1e9 - 1017.6).abs() < 1.0);
        assert!((DELTA_MAX_S * SPEED_OF_LIGHT - 305.1).abs() < 1.0);
    }

    #[test]
    fn paper_formula_gives_4_slots_at_75m() {
        // Paper Sect. VIII: r_max = 75 m → N_RPM ≈ 4.
        assert_eq!(SlotPlan::paper_supported_slots(75.0), 4);
    }

    #[test]
    fn physical_formula_accounts_for_round_trip() {
        // With the round-trip factor, 75 m supports only 2 slots.
        assert_eq!(SlotPlan::supported_slots(75.0, 0.0), 2);
        // At 20 m (the paper's indoor setting) with 30 ns delay spread:
        let slots = SlotPlan::supported_slots(20.0, 30e-9);
        assert!(slots >= 6, "got {slots}");
    }

    #[test]
    fn slot_delays_are_multiples_of_spacing() {
        let plan = SlotPlan::new(4).unwrap();
        for s in 0..4 {
            let delay = plan.slot_delay_s(s).unwrap();
            assert!((delay - s as f64 * plan.slot_spacing_s()).abs() < 1e-18);
        }
    }

    #[test]
    fn slot_delay_out_of_range_is_an_error() {
        let err = SlotPlan::new(4).unwrap().slot_delay_s(4).unwrap_err();
        assert!(matches!(
            err,
            RangingError::SlotOutOfRange {
                slot: 4,
                n_slots: 4
            }
        ));
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn rejects_zero_slots() {
        assert!(SlotPlan::new(0).is_err());
        assert!(SlotPlan::with_spacing(0, 100e-9).is_err());
    }

    #[test]
    fn rejects_oversized_spacing() {
        assert!(SlotPlan::with_spacing(8, 200e-9).is_err()); // 1.6 µs > window
        assert!(SlotPlan::with_spacing(4, 200e-9).is_ok());
    }

    #[test]
    fn decode_slot_roundtrip() {
        let plan = SlotPlan::new(4).unwrap();
        let delta = plan.slot_spacing_s();
        let c = SPEED_OF_LIGHT;
        for anchor in 0..4usize {
            let d_anchor = 8.0; // meters
            for slot in 0..4usize {
                // Responders anywhere within the absolute slot budget —
                // including CLOSER than the anchor (negative residual).
                for d_k in [0.5, 3.0, 8.0, 20.0, 36.0] {
                    let offset = (slot as f64 - anchor as f64) * delta + 2.0 * (d_k - d_anchor) / c;
                    assert_eq!(
                        plan.decode_slot(offset, anchor, d_anchor),
                        Some(slot),
                        "anchor {anchor} slot {slot} d_k {d_k}"
                    );
                }
            }
        }
    }

    #[test]
    fn decode_slot_tolerates_tx_jitter_below_zero() {
        // A same-slot responder at (nearly) zero distance whose offset
        // dips slightly negative from the ±8 ns TX grid still decodes
        // into the anchor slot.
        let plan = SlotPlan::new(4).unwrap();
        assert_eq!(plan.decode_slot(-8e-9, 1, 0.0), Some(1));
        assert_eq!(plan.decode_slot(-1e-9, 0, 0.0), Some(0));
    }

    #[test]
    fn decode_slot_rejects_out_of_window() {
        let plan = SlotPlan::new(4).unwrap();
        let delta = plan.slot_spacing_s();
        assert_eq!(plan.decode_slot(4.2 * delta, 0, 0.0), None);
        assert_eq!(plan.decode_slot(-1.2 * delta, 0, 0.0), None);
    }

    #[test]
    fn max_range_shrinks_with_delay_spread() {
        let plan = SlotPlan::new(4).unwrap();
        let clean = plan.max_range_m(0.0);
        let dirty = plan.max_range_m(50e-9);
        assert!(clean > dirty);
        // 4 slots ≈ 254 ns each → ~38 m round-trip-safe range.
        assert!((clean - 38.1).abs() < 0.5, "got {clean}");
    }
}
