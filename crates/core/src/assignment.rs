//! Responder ID → (slot, pulse shape) assignment — the combined scheme of
//! the paper's Sect. VIII.
//!
//! Response position modulation alone supports only `N_RPM` responders;
//! pulse shaping alone degrades for shapes that are too similar. The
//! combined scheme assigns each responder a slot *and* a shape, giving
//! `N_max = N_RPM · N_PS` concurrent responders:
//!
//! - slot:  `n_RPM = ID % N_RPM` (the paper's formula),
//! - shape: `n_PS = ⌊ID / N_RPM⌋`.
//!
//! Note: the paper prints the shape formula as `⌊ID / N_PS⌋`, which is
//! inconsistent with its own slot formula and Fig. 8 (it would produce
//! shape indices ≥ N_PS). We use the bijective variant above and document
//! the discrepancy in DESIGN.md.

use crate::error::RangingError;
use crate::rpm::SlotPlan;
use uwb_radio::TcPgDelay;

/// A single responder's assignment in the combined scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResponderAssignment {
    /// The responder's identifier.
    pub id: u32,
    /// RPM slot index (`n_RPM`).
    pub slot: usize,
    /// Pulse shape index (`n_PS`).
    pub shape: usize,
    /// The `TC_PGDELAY` register value implementing the shape.
    pub register: TcPgDelay,
}

/// The combined RPM × pulse-shaping scheme.
///
/// # Examples
///
/// ```
/// use concurrent_ranging::{CombinedScheme, SlotPlan};
///
/// // The paper's Fig. 8 example: 4 slots × 3 shapes = 12 responders.
/// let scheme = CombinedScheme::new(SlotPlan::new(4)?, 3)?;
/// assert_eq!(scheme.capacity(), 12);
/// let a = scheme.assign(7)?;
/// assert_eq!(a.slot, 3);  // 7 % 4
/// assert_eq!(a.shape, 1); // 7 / 4
/// # Ok::<(), concurrent_ranging::RangingError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CombinedScheme {
    plan: SlotPlan,
    shapes: Vec<TcPgDelay>,
}

impl CombinedScheme {
    /// Builds a scheme with `n_shapes` pulse shapes spread over the usable
    /// `TC_PGDELAY` range.
    ///
    /// # Errors
    ///
    /// Returns [`RangingError::InvalidSchemeParameters`] for zero shapes,
    /// or a radio error if more shapes are requested than registers exist.
    pub fn new(plan: SlotPlan, n_shapes: usize) -> Result<Self, RangingError> {
        if n_shapes == 0 {
            return Err(RangingError::InvalidSchemeParameters);
        }
        let shapes = TcPgDelay::spread(n_shapes)?;
        Ok(Self { plan, shapes })
    }

    /// Builds a scheme with explicit register values.
    ///
    /// # Errors
    ///
    /// Returns [`RangingError::InvalidSchemeParameters`] for an empty list.
    pub fn with_registers(plan: SlotPlan, shapes: Vec<TcPgDelay>) -> Result<Self, RangingError> {
        if shapes.is_empty() {
            return Err(RangingError::InvalidSchemeParameters);
        }
        Ok(Self { plan, shapes })
    }

    /// The slot plan.
    pub fn plan(&self) -> &SlotPlan {
        &self.plan
    }

    /// The pulse-shape registers, indexed by shape index.
    pub fn shapes(&self) -> &[TcPgDelay] {
        &self.shapes
    }

    /// Number of pulse shapes `N_PS`.
    pub fn n_shapes(&self) -> usize {
        self.shapes.len()
    }

    /// Maximum number of concurrent responders
    /// `N_max = N_RPM · N_PS` (Sect. VIII).
    pub fn capacity(&self) -> u32 {
        (self.plan.n_slots() * self.shapes.len()) as u32
    }

    /// Assigns slot and shape for a responder ID.
    ///
    /// # Errors
    ///
    /// Returns [`RangingError::IdBeyondCapacity`] when `id >= capacity`.
    pub fn assign(&self, id: u32) -> Result<ResponderAssignment, RangingError> {
        if id >= self.capacity() {
            return Err(RangingError::IdBeyondCapacity {
                id,
                capacity: self.capacity(),
            });
        }
        let slot = (id as usize) % self.plan.n_slots();
        let shape = (id as usize) / self.plan.n_slots();
        Ok(ResponderAssignment {
            id,
            slot,
            shape,
            register: self.shapes[shape],
        })
    }

    /// Recovers the responder ID from a decoded (slot, shape) pair.
    ///
    /// Returns `None` for out-of-range indices.
    pub fn id_from(&self, slot: usize, shape: usize) -> Option<u32> {
        if slot >= self.plan.n_slots() || shape >= self.shapes.len() {
            return None;
        }
        Some((shape * self.plan.n_slots() + slot) as u32)
    }

    /// The additional response delay `δ_i` for a responder ID.
    ///
    /// # Errors
    ///
    /// Returns [`RangingError::IdBeyondCapacity`] when `id >= capacity`.
    pub fn response_offset_s(&self, id: u32) -> Result<f64, RangingError> {
        let a = self.assign(id)?;
        self.plan.slot_delay_s(a.slot)
    }

    /// Plans a scheme for a deployment: the *maximum* physically-safe slot
    /// count for the operating range (round-trip spread + channel delay
    /// spread per slot, Sect. VII/VIII), then just enough pulse shapes to
    /// cover `n_users`. Maximizing slots first minimizes both overlap
    /// probability and the number of near-identical pulse shapes the
    /// identification stage must distinguish.
    ///
    /// # Errors
    ///
    /// Returns [`RangingError::InvalidSchemeParameters`] when no slot fits
    /// the requested range, and a radio-layer error (wrapped in
    /// [`RangingError::Radio`]) when even all 108 shapes cannot cover
    /// `n_users`.
    pub fn plan_for(
        n_users: u32,
        max_range_m: f64,
        delay_spread_s: f64,
    ) -> Result<Self, RangingError> {
        if n_users == 0 {
            return Err(RangingError::InvalidSchemeParameters);
        }
        let slots = SlotPlan::supported_slots(max_range_m, delay_spread_s);
        if slots == 0 {
            return Err(RangingError::InvalidSchemeParameters);
        }
        let shapes = (n_users as usize).div_ceil(slots);
        Self::new(SlotPlan::new(slots)?, shapes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme(slots: usize, shapes: usize) -> CombinedScheme {
        CombinedScheme::new(SlotPlan::new(slots).unwrap(), shapes).unwrap()
    }

    #[test]
    fn capacity_is_product() {
        assert_eq!(scheme(4, 3).capacity(), 12);
        assert_eq!(scheme(1, 1).capacity(), 1);
        assert_eq!(scheme(8, 5).capacity(), 40);
    }

    #[test]
    fn assignment_is_bijective() {
        let s = scheme(4, 3);
        let mut seen = std::collections::HashSet::new();
        for id in 0..s.capacity() {
            let a = s.assign(id).unwrap();
            assert!(a.slot < 4);
            assert!(a.shape < 3);
            assert!(seen.insert((a.slot, a.shape)), "duplicate for id {id}");
            assert_eq!(s.id_from(a.slot, a.shape), Some(id));
        }
    }

    #[test]
    fn paper_fig8_assignments() {
        // Fig. 8: responders with ID 0, 1, 2 use pulse shapes s1, s2, s3…
        // is satisfiable only by shape = ID % N_PS for those IDs; our
        // bijection (shape = ID / N_RPM) instead gives IDs 0..3 shape 0 —
        // both are valid bijections; verify ours matches its documentation.
        let s = scheme(4, 3);
        let a5 = s.assign(5).unwrap();
        assert_eq!((a5.slot, a5.shape), (1, 1));
        let a11 = s.assign(11).unwrap();
        assert_eq!((a11.slot, a11.shape), (3, 2));
    }

    #[test]
    fn rejects_id_beyond_capacity() {
        let s = scheme(4, 3);
        assert!(matches!(
            s.assign(12),
            Err(RangingError::IdBeyondCapacity {
                id: 12,
                capacity: 12
            })
        ));
    }

    #[test]
    fn first_shape_is_default_register() {
        let s = scheme(2, 3);
        assert_eq!(s.assign(0).unwrap().register, TcPgDelay::DEFAULT);
        assert_eq!(s.assign(1).unwrap().register, TcPgDelay::DEFAULT);
        assert_ne!(s.assign(2).unwrap().register, TcPgDelay::DEFAULT);
    }

    #[test]
    fn response_offsets_are_slot_delays() {
        let s = scheme(4, 3);
        let delta = s.plan().slot_spacing_s();
        for id in 0..12u32 {
            let offset = s.response_offset_s(id).unwrap();
            assert!((offset - (id as usize % 4) as f64 * delta).abs() < 1e-18);
        }
    }

    #[test]
    fn paper_scalability_claim_1500_responders() {
        // Sect. VIII: with r_max limited to 20 m and ~100 pulse shapes,
        // "the number of supported responders becomes more than 1500".
        let slots = SlotPlan::paper_supported_slots(20.0);
        assert_eq!(slots, 15);
        let s = CombinedScheme::new(
            SlotPlan::new(slots).unwrap(),
            TcPgDelay::SHAPE_COUNT, // all 108 usable shapes
        )
        .unwrap();
        assert!(s.capacity() > 1500, "capacity {}", s.capacity());
        // With exactly 100 shapes the capacity reaches the paper's 1500.
        let s100 = CombinedScheme::new(SlotPlan::new(slots).unwrap(), 100).unwrap();
        assert_eq!(s100.capacity(), 1500);
    }

    #[test]
    fn id_from_rejects_out_of_range() {
        let s = scheme(4, 3);
        assert_eq!(s.id_from(4, 0), None);
        assert_eq!(s.id_from(0, 3), None);
    }

    #[test]
    fn rejects_zero_shapes() {
        assert!(CombinedScheme::new(SlotPlan::new(4).unwrap(), 0).is_err());
        assert!(CombinedScheme::with_registers(SlotPlan::new(4).unwrap(), vec![]).is_err());
    }

    #[test]
    fn plan_for_covers_users_with_max_slots() {
        // 20 users at 15 m with 30 ns delay spread.
        let s = CombinedScheme::plan_for(20, 15.0, 30e-9).unwrap();
        assert!(s.capacity() >= 20);
        // Slots are maximized for the range…
        assert_eq!(s.plan().n_slots(), SlotPlan::supported_slots(15.0, 30e-9));
        // …and each slot stays physically safe.
        assert!(s.plan().max_range_m(30e-9) >= 15.0);
        // Shapes are minimal for the load.
        assert_eq!(s.n_shapes(), 20usize.div_ceil(s.plan().n_slots()));
    }

    #[test]
    fn plan_for_rejects_impossible_deployments() {
        // Zero users.
        assert!(CombinedScheme::plan_for(0, 10.0, 0.0).is_err());
        // Range so large no slot fits the CIR window.
        assert!(CombinedScheme::plan_for(4, 200.0, 0.0).is_err());
        // More users than 108 shapes × slots can serve.
        assert!(CombinedScheme::plan_for(10_000, 140.0, 0.0).is_err());
    }

    #[test]
    fn plan_for_single_user_single_shape() {
        let s = CombinedScheme::plan_for(1, 10.0, 20e-9).unwrap();
        assert_eq!(s.n_shapes(), 1);
        assert!(s.capacity() >= 1);
    }
}
