//! Double-sided two-way ranging (DS-TWR) — the standard remedy for the
//! clock-drift error that limits SS-TWR.
//!
//! SS-TWR's distance error grows as `c · δ · Δ_RESP / 2` with relative
//! crystal drift δ (see the drift ablation). DS-TWR adds a third message so
//! each side measures both a round-trip and a reply interval; the
//! asymmetric-reply formula (Neirynck et al., the DW1000 application-note
//! method) cancels drift to first order:
//!
//! ```text
//! ToF = (Ra·Rb − Da·Db) / (Ra + Rb + Da + Db)
//! ```
//!
//! where `Ra`/`Da` are the initiator's round/reply intervals and `Rb`/`Db`
//! the responder's. The paper uses SS-TWR throughout (the concurrent scheme
//! needs only one reply); DS-TWR is provided as the comparison baseline any
//! practical deployment would evaluate against.

use crate::estimate::TwrTimestamps;
use crate::protocol::{RangingMessage, INIT_PAYLOAD_BYTES, RESP_PAYLOAD_BYTES};
use uwb_netsim::{NodeApi, NodeId, Protocol, Reception};
use uwb_radio::{DeviceTime, DTU_SECONDS, PAPER_RESPONSE_DELAY_S, SPEED_OF_LIGHT};

/// The DS-TWR FINAL message payload piggybacks on [`RangingMessage::Resp`]
/// with this responder pseudo-ID, distinguishing it from first replies.
const FINAL_MARKER: u32 = u32::MAX;

/// Timer-token bit marking a round watchdog (low 32 bits carry the round).
const WATCHDOG_BIT: u64 = 1 << 32;

/// The six timestamps of a double-sided exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DsTwrTimestamps {
    /// Initiator POLL transmit time (its clock).
    pub poll_tx: DeviceTime,
    /// Responder POLL receive time (its clock).
    pub poll_rx: DeviceTime,
    /// Responder RESPONSE transmit time (its clock).
    pub resp_tx: DeviceTime,
    /// Initiator RESPONSE receive time (its clock).
    pub resp_rx: DeviceTime,
    /// Initiator FINAL transmit time (its clock).
    pub final_tx: DeviceTime,
    /// Responder FINAL receive time (its clock).
    pub final_rx: DeviceTime,
}

impl DsTwrTimestamps {
    /// The asymmetric double-sided time-of-flight estimate, drift-immune
    /// to first order.
    pub fn time_of_flight_s(&self) -> f64 {
        let ra = self.resp_rx.wrapping_sub(self.poll_tx) as f64; // initiator round
        let da = self.final_tx.wrapping_sub(self.resp_rx) as f64; // initiator reply
        let rb = self.final_rx.wrapping_sub(self.resp_tx) as f64; // responder round
        let db = self.resp_tx.wrapping_sub(self.poll_rx) as f64; // responder reply
        let denom = ra + rb + da + db;
        if denom <= 0.0 {
            return 0.0;
        }
        (ra * rb - da * db) / denom * DTU_SECONDS
    }

    /// Distance estimate in meters.
    pub fn distance_m(&self) -> f64 {
        self.time_of_flight_s() * SPEED_OF_LIGHT
    }
}

/// One completed DS-TWR measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DsTwrMeasurement {
    /// Round counter.
    pub round: u32,
    /// Double-sided distance estimate, meters.
    pub distance_m: f64,
    /// The single-sided estimate from the same exchange's first two
    /// messages (Eq. 2), for side-by-side drift comparisons.
    pub ss_distance_m: f64,
    /// The raw timestamps.
    pub timestamps: DsTwrTimestamps,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum RoundPhase {
    Idle,
    AwaitResponse,
    AwaitFinalEcho,
}

/// A DS-TWR protocol engine: POLL → RESPONSE → FINAL, with the responder
/// reporting its FINAL receive time back in a fourth report message so the
/// initiator can compute the estimate (the common "DS-TWR with report"
/// topology).
#[derive(Debug)]
pub struct DsTwrEngine {
    initiator: NodeId,
    responder: NodeId,
    rounds: u32,
    response_delay_s: f64,
    current_round: u32,
    phase: RoundPhase,
    poll_tx: Option<DeviceTime>,
    resp_rx: Option<DeviceTime>,
    final_tx: Option<DeviceTime>,
    resp_payload: Option<(DeviceTime, DeviceTime)>, // responder (poll_rx, resp_tx)
    /// Completed measurements.
    pub measurements: Vec<DsTwrMeasurement>,
    /// Rounds that timed out mid-exchange.
    pub timed_out_rounds: Vec<u32>,
    // Responder-side state.
    responder_resp_tx: Option<DeviceTime>,
}

impl DsTwrEngine {
    /// Creates an engine running `rounds` exchanges with the paper's
    /// 290 µs reply delay on both sides.
    pub fn new(initiator: NodeId, responder: NodeId, rounds: u32) -> Self {
        Self {
            initiator,
            responder,
            rounds,
            response_delay_s: PAPER_RESPONSE_DELAY_S,
            current_round: 0,
            phase: RoundPhase::Idle,
            poll_tx: None,
            resp_rx: None,
            final_tx: None,
            resp_payload: None,
            measurements: Vec::new(),
            timed_out_rounds: Vec::new(),
            responder_resp_tx: None,
        }
    }

    /// The distance estimates collected so far, meters.
    pub fn distances_m(&self) -> Vec<f64> {
        self.measurements.iter().map(|m| m.distance_m).collect()
    }

    /// The single-sided estimates from the same exchanges, meters.
    pub fn ss_distances_m(&self) -> Vec<f64> {
        self.measurements.iter().map(|m| m.ss_distance_m).collect()
    }

    fn start_round(&mut self, api: &mut NodeApi<RangingMessage>) {
        let at = api
            .device_now()
            .wrapping_add_seconds(200e-6)
            .expect("margin positive")
            .quantize_tx();
        self.poll_tx = Some(at);
        self.phase = RoundPhase::AwaitResponse;
        api.transmit_at(
            at,
            RangingMessage::Init {
                round: self.current_round,
            },
            INIT_PAYLOAD_BYTES,
        );
        api.record_listen(self.response_delay_s);
        // Watchdog over the full four-message exchange.
        api.set_timer(
            4.0 * self.response_delay_s + 1e-3,
            WATCHDOG_BIT | u64::from(self.current_round),
        );
    }
}

impl Protocol<RangingMessage> for DsTwrEngine {
    fn on_start(&mut self, node: NodeId, api: &mut NodeApi<RangingMessage>) {
        if node == self.initiator && self.rounds > 0 {
            self.start_round(api);
        }
    }

    fn on_reception(
        &mut self,
        node: NodeId,
        reception: &Reception<RangingMessage>,
        api: &mut NodeApi<RangingMessage>,
    ) {
        let Some(decoded) = reception.decoded() else {
            return;
        };
        match decoded.payload {
            // Responder: POLL arrives → send RESPONSE.
            RangingMessage::Init { round } if node == self.responder => {
                let tx = reception
                    .rx_device_time
                    .wrapping_add_seconds(self.response_delay_s)
                    .expect("delay positive")
                    .quantize_tx();
                self.responder_resp_tx = Some(tx);
                api.transmit_at(
                    tx,
                    RangingMessage::Resp {
                        round,
                        responder_id: 0,
                        rx_timestamp: reception.rx_device_time,
                        tx_timestamp: tx,
                    },
                    RESP_PAYLOAD_BYTES,
                );
                api.record_listen(self.response_delay_s);
            }
            // Initiator: RESPONSE arrives → send FINAL.
            RangingMessage::Resp {
                round,
                responder_id,
                rx_timestamp,
                tx_timestamp,
            } if node == self.initiator
                && responder_id != FINAL_MARKER
                && round == self.current_round
                && self.phase == RoundPhase::AwaitResponse =>
            {
                self.resp_rx = Some(reception.rx_device_time);
                self.resp_payload = Some((rx_timestamp, tx_timestamp));
                let tx = reception
                    .rx_device_time
                    .wrapping_add_seconds(self.response_delay_s)
                    .expect("delay positive")
                    .quantize_tx();
                self.final_tx = Some(tx);
                self.phase = RoundPhase::AwaitFinalEcho;
                api.transmit_at(
                    tx,
                    RangingMessage::Resp {
                        round,
                        responder_id: 0,
                        rx_timestamp: reception.rx_device_time,
                        tx_timestamp: tx,
                    },
                    RESP_PAYLOAD_BYTES,
                );
                api.record_listen(self.response_delay_s);
            }
            // Responder: FINAL arrives → report its receive time back.
            RangingMessage::Resp { round, .. }
                if node == self.responder && self.responder_resp_tx.is_some() =>
            {
                let tx = reception
                    .rx_device_time
                    .wrapping_add_seconds(self.response_delay_s)
                    .expect("delay positive")
                    .quantize_tx();
                api.transmit_at(
                    tx,
                    RangingMessage::Resp {
                        round,
                        responder_id: FINAL_MARKER,
                        rx_timestamp: reception.rx_device_time, // final_rx
                        tx_timestamp: tx,
                    },
                    RESP_PAYLOAD_BYTES,
                );
                self.responder_resp_tx = None;
            }
            // Initiator: REPORT arrives → compute the estimate.
            RangingMessage::Resp {
                round,
                responder_id: FINAL_MARKER,
                rx_timestamp: final_rx,
                ..
            } if node == self.initiator
                && round == self.current_round
                && self.phase == RoundPhase::AwaitFinalEcho =>
            {
                let (Some(poll_tx), Some(resp_rx), Some(final_tx), Some((poll_rx, resp_tx))) =
                    (self.poll_tx, self.resp_rx, self.final_tx, self.resp_payload)
                else {
                    return;
                };
                let timestamps = DsTwrTimestamps {
                    poll_tx,
                    poll_rx,
                    resp_tx,
                    resp_rx,
                    final_tx,
                    final_rx,
                };
                let ss = TwrTimestamps {
                    init_tx: poll_tx,
                    init_rx: resp_rx,
                    resp_rx: poll_rx,
                    resp_tx,
                };
                uwb_obs::event("dstwr.solve", || {
                    vec![
                        ("round", round.into()),
                        ("distance_m", timestamps.distance_m().into()),
                        ("ss_distance_m", ss.distance_m().into()),
                    ]
                });
                self.measurements.push(DsTwrMeasurement {
                    round,
                    distance_m: timestamps.distance_m(),
                    ss_distance_m: ss.distance_m(),
                    timestamps,
                });
                self.phase = RoundPhase::Idle;
                self.current_round += 1;
                if self.current_round < self.rounds {
                    api.set_timer(500e-6, u64::from(self.current_round));
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, node: NodeId, token: u64, api: &mut NodeApi<RangingMessage>) {
        if node != self.initiator {
            return;
        }
        if token & WATCHDOG_BIT != 0 {
            let round = (token & u64::from(u32::MAX)) as u32;
            if round == self.current_round && self.phase != RoundPhase::Idle {
                self.timed_out_rounds.push(round);
                self.phase = RoundPhase::Idle;
                self.current_round += 1;
                if self.current_round < self.rounds {
                    self.start_round(api);
                }
            }
        } else {
            self.start_round(api);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_channel::ChannelModel;
    use uwb_dsp::stats;
    use uwb_netsim::{ClockModel, NodeConfig, SimConfig, Simulator};
    use uwb_radio::meters_to_seconds;

    fn dt(seconds: f64) -> DeviceTime {
        DeviceTime::from_seconds(seconds).unwrap()
    }

    #[test]
    fn formula_exact_for_ideal_clocks() {
        let tof = meters_to_seconds(12.0);
        let d = 400e-6;
        let ts = DsTwrTimestamps {
            poll_tx: dt(1.0),
            poll_rx: dt(5.0 + tof),
            resp_tx: dt(5.0 + tof + d),
            resp_rx: dt(1.0 + 2.0 * tof + d),
            final_tx: dt(1.0 + 2.0 * tof + 2.0 * d),
            final_rx: dt(5.0 + 3.0 * tof + 2.0 * d),
        };
        assert!((ts.distance_m() - 12.0).abs() < 0.01, "{}", ts.distance_m());
    }

    #[test]
    fn formula_cancels_drift_to_first_order() {
        // Rigorous two-clock construction: the initiator is ideal, the
        // responder's clock is `local = o + r·global` with r = 1 + 20 ppm.
        let tof = meters_to_seconds(10.0);
        let d = 400e-6; // both sides schedule replies D after reception
        let r = 1.0 + 20e-6;
        let o = 5.0;
        let g0 = 1.0; // POLL RMARKER, global time
        let g1 = g0 + tof + d / r; // RESPONSE leaves after D responder-local
        let g2 = g1 + tof + d; // FINAL leaves after D initiator-local
        let ts = DsTwrTimestamps {
            poll_tx: dt(g0),
            poll_rx: dt(o + r * (g0 + tof)),
            resp_tx: dt(o + r * (g0 + tof) + d),
            resp_rx: dt(g1 + tof),
            final_tx: dt(g2),
            final_rx: dt(o + r * (g2 + tof)),
        };
        // SS-TWR on the first two messages is off by ≈ c·20ppm·D/2 ≈ 0.6 m…
        let ss = TwrTimestamps {
            init_tx: ts.poll_tx,
            init_rx: ts.resp_rx,
            resp_rx: ts.poll_rx,
            resp_tx: ts.resp_tx,
        };
        assert!(
            (ss.distance_m() - 10.0).abs() > 0.5,
            "ss {}",
            ss.distance_m()
        );
        // …while DS-TWR stays centimetric.
        assert!(
            (ts.distance_m() - 10.0).abs() < 0.05,
            "ds {}",
            ts.distance_m()
        );
    }

    fn run_engine(drift_ppm: f64, rounds: u32, seed: u64) -> DsTwrEngine {
        let mut sim = Simulator::new(ChannelModel::free_space(), SimConfig::default(), seed);
        let a = sim.add_node(NodeConfig::at(0.0, 0.0));
        let b = sim.add_node(NodeConfig::at(7.0, 0.0).with_clock(ClockModel::new(1.0, drift_ppm)));
        let mut engine = DsTwrEngine::new(a, b, rounds);
        sim.run(&mut engine, rounds as f64 * 4e-3 + 1.0);
        engine
    }

    #[test]
    fn end_to_end_without_drift() {
        let engine = run_engine(0.0, 10, 1);
        assert_eq!(engine.measurements.len(), 10);
        let mean = stats::mean(&engine.distances_m());
        assert!((mean - 7.0).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn end_to_end_drift_immunity_vs_sstwr() {
        // 20 ppm responder drift: SS-TWR biases by ≈ −0.87 m, DS-TWR stays
        // within a few centimetres.
        let engine = run_engine(20.0, 20, 2);
        assert_eq!(engine.measurements.len(), 20);
        let ds_bias = stats::mean(&engine.distances_m()) - 7.0;
        let ss_bias = stats::mean(&engine.ss_distances_m()) - 7.0;
        assert!(ds_bias.abs() < 0.05, "DS bias {ds_bias}");
        assert!((ss_bias + 0.87).abs() < 0.1, "SS bias {ss_bias}");
    }

    #[test]
    fn ds_twr_costs_four_messages_per_round() {
        let mut sim = Simulator::new(ChannelModel::free_space(), SimConfig::default(), 3);
        let a = sim.add_node(NodeConfig::at(0.0, 0.0));
        let b = sim.add_node(NodeConfig::at(5.0, 0.0));
        let mut engine = DsTwrEngine::new(a, b, 2);
        sim.run(&mut engine, 1.0);
        let tx = sim
            .trace()
            .iter()
            .filter(|e| matches!(e, uwb_netsim::TraceEvent::TxFired { .. }))
            .count();
        assert_eq!(tx, 8); // 4 messages × 2 rounds
    }
}
