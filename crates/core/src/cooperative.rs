//! Cooperative localization — the other half of the paper's future work
//! ("an efficient cooperative or anchor-based localization system").
//!
//! One [`crate::NetworkRanging`] cycle yields the all-pairs distance
//! matrix for `N` messages of airtime. With a few nodes at known positions
//! (anchors), the remaining positions follow from a joint nonlinear
//! least-squares over *every* measured pair — including tag↔tag ranges,
//! which is what makes the solution *cooperative*: tags with poor anchor
//! geometry are pulled into place by their neighbors.

use crate::error::RangingError;
use crate::network::DistanceMatrix;
use uwb_channel::Point2;

/// A node in the cooperative solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeRole {
    /// Fixed, known position (not optimized).
    Anchor(Point2),
    /// Unknown position, optionally with an initial guess.
    Tag(Option<Point2>),
}

/// Result of a cooperative solve.
#[derive(Debug, Clone)]
pub struct CooperativeFix {
    /// Solved position per node (anchors echoed unchanged).
    pub positions: Vec<Point2>,
    /// RMS residual over measured pairs, meters.
    pub residual_rms_m: f64,
    /// Gauss–Newton iterations used.
    pub iterations: usize,
}

/// Jointly solves tag positions from a distance matrix.
///
/// Pairs measured in both directions are averaged; unresolved pairs are
/// skipped. Requires at least three anchors (2-D rigidity) and at least
/// one measurement per tag.
///
/// # Errors
///
/// Returns [`RangingError::InvalidSchemeParameters`] when the problem is
/// underdetermined (fewer than 3 anchors, a tag without measurements, or
/// a matrix/roles size mismatch).
pub fn solve_cooperative(
    roles: &[NodeRole],
    matrix: &DistanceMatrix,
) -> Result<CooperativeFix, RangingError> {
    let n = roles.len();
    if matrix.len() != n {
        return Err(RangingError::InvalidSchemeParameters);
    }
    let anchors: Vec<usize> = roles
        .iter()
        .enumerate()
        .filter_map(|(i, r)| matches!(r, NodeRole::Anchor(_)).then_some(i))
        .collect();
    if anchors.len() < 3 {
        return Err(RangingError::InvalidSchemeParameters);
    }

    // Symmetrized measurement list (i < j).
    let mut measurements: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let d = match (matrix.get(i, j), matrix.get(j, i)) {
                (Some(a), Some(b)) => Some((a + b) / 2.0),
                (Some(a), None) | (None, Some(a)) => Some(a),
                (None, None) => None,
            };
            if let Some(d) = d {
                measurements.push((i, j, d));
            }
        }
    }

    let tags: Vec<usize> = roles
        .iter()
        .enumerate()
        .filter_map(|(i, r)| matches!(r, NodeRole::Tag(_)).then_some(i))
        .collect();
    for &t in &tags {
        let covered = measurements.iter().any(|&(i, j, _)| i == t || j == t);
        if !covered {
            return Err(RangingError::InvalidSchemeParameters);
        }
    }

    // Initial positions: anchors fixed; tags at their guess, else
    // incremental trilateration — repeatedly multilaterate any tag with
    // ≥3 already-placed references (anchors or previously placed tags),
    // which avoids the mirror-image local minima a centroid start can
    // fall into. Tags that never gather 3 references start at the anchor
    // centroid with a symmetry-breaking nudge.
    let centroid = {
        let (mut cx, mut cy) = (0.0, 0.0);
        for &a in &anchors {
            if let NodeRole::Anchor(p) = roles[a] {
                cx += p.x;
                cy += p.y;
            }
        }
        Point2::new(cx / anchors.len() as f64, cy / anchors.len() as f64)
    };
    let mut positions: Vec<Point2> = roles
        .iter()
        .map(|r| match r {
            NodeRole::Anchor(p) => *p,
            NodeRole::Tag(Some(p)) => *p,
            NodeRole::Tag(None) => centroid,
        })
        .collect();
    let mut placed: Vec<bool> = roles
        .iter()
        .map(|r| !matches!(r, NodeRole::Tag(None)))
        .collect();
    loop {
        let mut progressed = false;
        for &t in &tags {
            if placed[t] {
                continue;
            }
            let refs: Vec<crate::localization::RangeToAnchor> = measurements
                .iter()
                .filter_map(|&(i, j, d)| {
                    let other = if i == t {
                        j
                    } else if j == t {
                        i
                    } else {
                        return None;
                    };
                    placed[other].then_some(crate::localization::RangeToAnchor {
                        anchor: positions[other],
                        distance_m: d,
                    })
                })
                .collect();
            if refs.len() >= 3 {
                if let Ok(fix) = crate::localization::multilaterate(&refs) {
                    positions[t] = fix.position;
                    placed[t] = true;
                    progressed = true;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    for (i, p) in positions.iter_mut().enumerate() {
        if !placed[i] {
            p.x += 0.1 * (i as f64 + 1.0);
            p.y -= 0.07 * (i as f64 + 1.0);
        }
    }

    let cost = |pos: &[Point2]| -> f64 {
        measurements
            .iter()
            .map(|&(i, j, d)| (pos[i].distance_to(pos[j]) - d).powi(2))
            .sum()
    };

    // Block-coordinate Gauss–Newton: update each tag against the current
    // positions of all its neighbors (anchors and other tags). Simple,
    // matrix-free, and robust for the small networks the scheme supports.
    let mut iterations = 0;
    for _ in 0..100 {
        iterations += 1;
        let mut moved = 0.0_f64;
        for &t in &tags {
            let (mut jtj00, mut jtj01, mut jtj11) = (0.0, 0.0, 0.0);
            let (mut jtr0, mut jtr1) = (0.0, 0.0);
            for &(i, j, d) in &measurements {
                let other = if i == t {
                    j
                } else if j == t {
                    i
                } else {
                    continue;
                };
                let dx = positions[t].x - positions[other].x;
                let dy = positions[t].y - positions[other].y;
                let dist = (dx * dx + dy * dy).sqrt().max(1e-9);
                let res = dist - d;
                let (jx, jy) = (dx / dist, dy / dist);
                jtj00 += jx * jx;
                jtj01 += jx * jy;
                jtj11 += jy * jy;
                jtr0 += jx * res;
                jtr1 += jy * res;
            }
            // Levenberg damping keeps poorly-conditioned tags stable.
            let lambda = 1e-6;
            let det = (jtj00 + lambda) * (jtj11 + lambda) - jtj01 * jtj01;
            if det.abs() < 1e-12 {
                continue;
            }
            let step_x = -((jtj11 + lambda) * jtr0 - jtj01 * jtr1) / det;
            let step_y = -(-jtj01 * jtr0 + (jtj00 + lambda) * jtr1) / det;

            // Step-halving line search on the global cost.
            let before = cost(&positions);
            let mut scale = 1.0;
            for _ in 0..6 {
                let candidate = Point2::new(
                    positions[t].x + scale * step_x,
                    positions[t].y + scale * step_y,
                );
                let saved = positions[t];
                positions[t] = candidate;
                if cost(&positions) < before {
                    moved += scale * step_x.hypot(step_y);
                    break;
                }
                positions[t] = saved;
                scale *= 0.5;
            }
        }
        if moved < 1e-9 {
            break;
        }
    }

    let rms = (cost(&positions) / measurements.len().max(1) as f64).sqrt();
    Ok(CooperativeFix {
        positions,
        residual_rms_m: rms,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::DistanceMatrix;

    fn matrix_from_truth(truth: &[Point2]) -> DistanceMatrix {
        let mut m = DistanceMatrix::new(truth.len());
        for i in 0..truth.len() {
            for j in 0..truth.len() {
                if i != j {
                    m.set_entry(i, j, truth[i].distance_to(truth[j]));
                }
            }
        }
        m
    }

    fn layout() -> (Vec<Point2>, Vec<NodeRole>) {
        let truth = vec![
            Point2::new(0.0, 0.0),  // anchor
            Point2::new(12.0, 0.0), // anchor
            Point2::new(6.0, 10.0), // anchor
            Point2::new(4.0, 3.0),  // tag
            Point2::new(8.0, 5.0),  // tag
            Point2::new(2.5, 6.5),  // tag
        ];
        let roles = vec![
            NodeRole::Anchor(truth[0]),
            NodeRole::Anchor(truth[1]),
            NodeRole::Anchor(truth[2]),
            NodeRole::Tag(None),
            NodeRole::Tag(None),
            NodeRole::Tag(None),
        ];
        (truth, roles)
    }

    #[test]
    fn exact_matrix_gives_exact_positions() {
        let (truth, roles) = layout();
        let matrix = matrix_from_truth(&truth);
        let fix = solve_cooperative(&roles, &matrix).unwrap();
        for (i, p) in fix.positions.iter().enumerate() {
            assert!(
                p.distance_to(truth[i]) < 1e-4,
                "node {i}: solved {p:?}, truth {:?}",
                truth[i]
            );
        }
        assert!(fix.residual_rms_m < 1e-4);
    }

    #[test]
    fn tag_to_tag_ranges_rescue_poor_anchor_geometry() {
        // Tag 4 only ranges to ONE anchor plus the other tags: anchor-only
        // multilateration is impossible for it, but cooperation places it.
        let (truth, roles) = layout();
        let mut matrix = matrix_from_truth(&truth);
        // Remove tag 4's ranges to anchors 1 and 2 (both directions).
        for a in [1usize, 2] {
            matrix.clear_entry(4, a);
            matrix.clear_entry(a, 4);
        }
        let fix = solve_cooperative(&roles, &matrix).unwrap();
        assert!(
            fix.positions[4].distance_to(truth[4]) < 1e-3,
            "tag 4 solved at {:?}",
            fix.positions[4]
        );
    }

    #[test]
    fn noisy_matrix_gives_small_errors() {
        let (truth, roles) = layout();
        let mut matrix = DistanceMatrix::new(truth.len());
        // ±5 cm deterministic perturbations.
        let noise = [0.05, -0.04, 0.03, -0.05, 0.02, -0.03, 0.04];
        let mut k = 0;
        for i in 0..truth.len() {
            for j in 0..truth.len() {
                if i != j {
                    let d = truth[i].distance_to(truth[j]) + noise[k % noise.len()];
                    matrix.set_entry(i, j, d);
                    k += 1;
                }
            }
        }
        let fix = solve_cooperative(&roles, &matrix).unwrap();
        for (i, p) in fix.positions.iter().enumerate() {
            assert!(
                p.distance_to(truth[i]) < 0.15,
                "node {i} error {}",
                p.distance_to(truth[i])
            );
        }
    }

    #[test]
    fn rejects_underdetermined_problems() {
        let (truth, mut roles) = layout();
        let matrix = matrix_from_truth(&truth);
        // Only two anchors.
        roles[2] = NodeRole::Tag(None);
        assert!(solve_cooperative(&roles, &matrix).is_err());

        // A tag with no measurements at all.
        let (truth, roles) = layout();
        let mut matrix = matrix_from_truth(&truth);
        for other in 0..truth.len() {
            matrix.clear_entry(5, other);
            matrix.clear_entry(other, 5);
        }
        assert!(solve_cooperative(&roles, &matrix).is_err());
    }

    #[test]
    fn size_mismatch_is_rejected() {
        let (_, roles) = layout();
        let matrix = DistanceMatrix::new(2);
        assert!(solve_cooperative(&roles, &matrix).is_err());
    }
}
