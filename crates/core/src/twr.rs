//! Single-sided two-way ranging (SS-TWR) — the classical scheme of the
//! paper's Fig. 3, used both as the baseline protocol and as the anchor
//! (`d_TWR`) inside concurrent ranging.

use crate::estimate::TwrTimestamps;
use crate::protocol::{RangingMessage, INIT_PAYLOAD_BYTES, RESP_PAYLOAD_BYTES};
use uwb_netsim::{NodeApi, NodeId, Protocol, Reception};
use uwb_radio::{DeviceTime, PAPER_RESPONSE_DELAY_S};

/// Timer-token bit marking a round watchdog (low 32 bits carry the round).
const WATCHDOG_BIT: u64 = 1 << 32;

/// One completed SS-TWR measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwrMeasurement {
    /// The round counter.
    pub round: u32,
    /// The estimated distance (Eq. 2, or CFO-corrected when enabled),
    /// meters.
    pub distance_m: f64,
    /// The measured carrier frequency offset of the responder, ppm.
    pub cfo_ppm: f64,
    /// The raw timestamps behind the estimate.
    pub timestamps: TwrTimestamps,
}

/// An SS-TWR protocol engine: one initiator ranges repeatedly to one
/// responder, collecting [`TwrMeasurement`]s — the workload of the paper's
/// pulse-shape precision evaluation (Sect. V: 5000 SS-TWR operations).
///
/// Drive it with [`uwb_netsim::Simulator::run`].
#[derive(Debug)]
pub struct SsTwrEngine {
    initiator: NodeId,
    responder: NodeId,
    rounds: u32,
    response_delay_s: f64,
    round_gap_s: f64,
    /// Margin between scheduling and the INIT transmission.
    tx_margin_s: f64,
    cfo_correction: bool,
    current_round: u32,
    init_tx: Option<DeviceTime>,
    /// Completed measurements.
    pub measurements: Vec<TwrMeasurement>,
    /// Rounds that timed out without a usable RESP.
    pub timed_out_rounds: Vec<u32>,
}

impl SsTwrEngine {
    /// Creates an engine ranging `rounds` times between two nodes with the
    /// paper's 290 µs response delay.
    pub fn new(initiator: NodeId, responder: NodeId, rounds: u32) -> Self {
        Self {
            initiator,
            responder,
            rounds,
            response_delay_s: PAPER_RESPONSE_DELAY_S,
            round_gap_s: 500e-6,
            tx_margin_s: 200e-6,
            cfo_correction: false,
            current_round: 0,
            init_tx: None,
            measurements: Vec::new(),
            timed_out_rounds: Vec::new(),
        }
    }

    /// Overrides the response delay `Δ_RESP`.
    #[must_use]
    pub fn with_response_delay(mut self, delay_s: f64) -> Self {
        self.response_delay_s = delay_s;
        self
    }

    /// Enables carrier-frequency-offset drift correction: the initiator
    /// rescales the responder's reply interval by the CFO its receiver
    /// measures, cancelling the `c·δ·Δ_RESP/2` drift bias.
    #[must_use]
    pub fn with_cfo_correction(mut self) -> Self {
        self.cfo_correction = true;
        self
    }

    /// The distance estimates collected so far, in meters.
    pub fn distances_m(&self) -> Vec<f64> {
        self.measurements.iter().map(|m| m.distance_m).collect()
    }

    fn start_round(&mut self, api: &mut NodeApi<RangingMessage>) {
        // Quantize ourselves so the embedded t_tx,init matches the actual
        // RMARKER time exactly (the radio would do the same truncation).
        let at = api
            .device_now()
            .wrapping_add_seconds(self.tx_margin_s)
            .expect("margin is positive")
            .quantize_tx();
        self.init_tx = Some(at);
        api.transmit_at(
            at,
            RangingMessage::Init {
                round: self.current_round,
            },
            INIT_PAYLOAD_BYTES,
        );
        // The initiator listens for the whole response window.
        api.record_listen(self.response_delay_s);
        // Watchdog: a lost exchange must not stall the remaining rounds.
        api.set_timer(
            self.response_delay_s + 1e-3,
            WATCHDOG_BIT | u64::from(self.current_round),
        );
    }
}

impl Protocol<RangingMessage> for SsTwrEngine {
    fn on_start(&mut self, node: NodeId, api: &mut NodeApi<RangingMessage>) {
        if node == self.initiator && self.rounds > 0 {
            self.start_round(api);
        }
    }

    fn on_reception(
        &mut self,
        node: NodeId,
        reception: &Reception<RangingMessage>,
        api: &mut NodeApi<RangingMessage>,
    ) {
        let Some(decoded) = reception.decoded() else {
            return;
        };
        match decoded.payload {
            RangingMessage::Init { round } if node == self.responder => {
                // Schedule the RESP a fixed delay after the measured
                // reception time; embed both timestamps (Fig. 3).
                let tx = reception
                    .rx_device_time
                    .wrapping_add_seconds(self.response_delay_s)
                    .expect("delay is positive")
                    .quantize_tx();
                api.transmit_at(
                    tx,
                    RangingMessage::Resp {
                        round,
                        responder_id: 0,
                        rx_timestamp: reception.rx_device_time,
                        tx_timestamp: tx,
                    },
                    RESP_PAYLOAD_BYTES,
                );
            }
            RangingMessage::Resp {
                round,
                rx_timestamp,
                tx_timestamp,
                ..
            } if node == self.initiator && round == self.current_round => {
                let Some(init_tx) = self.init_tx else {
                    return;
                };
                let timestamps = TwrTimestamps {
                    init_tx,
                    init_rx: reception.rx_device_time,
                    resp_rx: rx_timestamp,
                    resp_tx: tx_timestamp,
                };
                let distance_m = if self.cfo_correction {
                    timestamps.distance_cfo_corrected_m(reception.cfo_ppm)
                } else {
                    timestamps.distance_m()
                };
                uwb_obs::event("twr.solve", || {
                    vec![
                        ("round", round.into()),
                        ("distance_m", distance_m.into()),
                        ("cfo_ppm", reception.cfo_ppm.into()),
                        ("cfo_corrected", self.cfo_correction.into()),
                    ]
                });
                self.measurements.push(TwrMeasurement {
                    round,
                    distance_m,
                    cfo_ppm: reception.cfo_ppm,
                    timestamps,
                });
                self.current_round += 1;
                if self.current_round < self.rounds {
                    api.set_timer(self.round_gap_s, u64::from(self.current_round));
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, node: NodeId, token: u64, api: &mut NodeApi<RangingMessage>) {
        if node != self.initiator {
            return;
        }
        if token & WATCHDOG_BIT != 0 {
            let round = (token & u64::from(u32::MAX)) as u32;
            if round == self.current_round {
                self.timed_out_rounds.push(round);
                self.current_round += 1;
                if self.current_round < self.rounds {
                    self.start_round(api);
                }
            }
        } else {
            self.start_round(api);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_channel::{ChannelModel, Room};
    use uwb_dsp::stats;
    use uwb_netsim::{ClockModel, NodeConfig, SimConfig, Simulator};

    fn run_twr(
        distance_m: f64,
        rounds: u32,
        sim_config: SimConfig,
        channel: ChannelModel,
        seed: u64,
    ) -> SsTwrEngine {
        let mut sim = Simulator::new(channel, sim_config, seed);
        let a = sim.add_node(NodeConfig::at(0.0, 1.0));
        let b = sim.add_node(NodeConfig::at(distance_m, 1.0));
        let mut engine = SsTwrEngine::new(a, b, rounds);
        sim.run(&mut engine, 60.0);
        engine
    }

    #[test]
    fn noise_free_twr_is_exact() {
        let cfg = SimConfig {
            rx_timestamp_noise_s: 0.0,
            ..SimConfig::default()
        };
        let engine = run_twr(10.0, 1, cfg, ChannelModel::free_space(), 1);
        assert_eq!(engine.measurements.len(), 1);
        // Only residual error: DTU rounding of timestamps (< 1 cm).
        let err = (engine.measurements[0].distance_m - 10.0).abs();
        assert!(err < 0.01, "error {err} m");
    }

    #[test]
    fn multiple_rounds_complete() {
        let engine = run_twr(5.0, 20, SimConfig::default(), ChannelModel::free_space(), 2);
        assert_eq!(engine.measurements.len(), 20);
        for m in &engine.measurements {
            assert!(
                (m.distance_m - 5.0).abs() < 0.2,
                "distance {}",
                m.distance_m
            );
        }
    }

    #[test]
    fn ranging_error_spread_matches_calibration() {
        // With the default RX noise the distance spread must land near the
        // paper's σ ≈ 2.3 cm (Sect. V).
        let engine = run_twr(
            3.0,
            300,
            SimConfig::default(),
            ChannelModel::free_space(),
            3,
        );
        let sigma = stats::std_dev(&engine.distances_m());
        assert!(
            (0.015..0.032).contains(&sigma),
            "σ = {sigma} m outside the calibrated band"
        );
    }

    #[test]
    fn clock_offset_does_not_bias_twr() {
        let mut sim = Simulator::new(ChannelModel::free_space(), SimConfig::default(), 4);
        let a = sim.add_node(NodeConfig::at(0.0, 0.0).with_clock(ClockModel::new(3.0, 0.0)));
        let b = sim.add_node(NodeConfig::at(7.0, 0.0).with_clock(ClockModel::new(9.0, 0.0)));
        let mut engine = SsTwrEngine::new(a, b, 50);
        sim.run(&mut engine, 60.0);
        let mean = stats::mean(&engine.distances_m());
        assert!((mean - 7.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn clock_drift_biases_twr_proportionally() {
        // A responder clock running fast by 10 ppm over Δ_RESP = 290 µs
        // biases the distance by ≈ −c·drift·Δ/2 ≈ −0.43 m — the known
        // SS-TWR drift error the paper's Δ_RESP choice keeps small.
        let mut sim = Simulator::new(ChannelModel::free_space(), SimConfig::default(), 5);
        let a = sim.add_node(NodeConfig::at(0.0, 0.0));
        let b = sim.add_node(NodeConfig::at(5.0, 0.0).with_clock(ClockModel::new(0.0, 10.0)));
        let mut engine = SsTwrEngine::new(a, b, 50);
        sim.run(&mut engine, 60.0);
        let bias = stats::mean(&engine.distances_m()) - 5.0;
        assert!(
            (bias + 0.435).abs() < 0.05,
            "drift bias {bias} m (expected ≈ −0.435)"
        );
    }

    #[test]
    fn cfo_correction_cancels_drift_end_to_end() {
        // 20 ppm responder drift: plain SS-TWR biases by ≈ −0.87 m, the
        // CFO-corrected engine stays within centimetres.
        let mut sim = Simulator::new(ChannelModel::free_space(), SimConfig::default(), 15);
        let a = sim.add_node(NodeConfig::at(0.0, 0.0));
        let b = sim.add_node(NodeConfig::at(5.0, 0.0).with_clock(ClockModel::new(0.0, 20.0)));
        let mut engine = SsTwrEngine::new(a, b, 40).with_cfo_correction();
        sim.run(&mut engine, 60.0);
        let mean = stats::mean(&engine.distances_m());
        assert!((mean - 5.0).abs() < 0.05, "corrected mean {mean}");
        // The measured CFO itself is recovered.
        let cfo = stats::mean(
            &engine
                .measurements
                .iter()
                .map(|m| m.cfo_ppm)
                .collect::<Vec<f64>>(),
        );
        assert!((cfo - 20.0).abs() < 0.1, "cfo {cfo}");
    }

    #[test]
    fn multipath_room_still_ranges_on_direct_path() {
        let channel = ChannelModel::in_room(Room::rectangular(20.0, 6.0, 0.7));
        let mut sim = Simulator::new(channel, SimConfig::default(), 6);
        let a = sim.add_node(NodeConfig::at(2.0, 3.0));
        let b = sim.add_node(NodeConfig::at(8.0, 3.0));
        let mut engine = SsTwrEngine::new(a, b, 30);
        sim.run(&mut engine, 60.0);
        assert_eq!(engine.measurements.len(), 30);
        let mean = stats::mean(&engine.distances_m());
        assert!((mean - 6.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn energy_accounting_per_round() {
        let mut sim = Simulator::new(ChannelModel::free_space(), SimConfig::default(), 7);
        let a = sim.add_node(NodeConfig::at(0.0, 0.0));
        let b = sim.add_node(NodeConfig::at(5.0, 0.0));
        let mut engine = SsTwrEngine::new(a, b, 10);
        sim.run(&mut engine, 60.0);
        let la = sim.node_ledger(a);
        let lb = sim.node_ledger(b);
        // Initiator: 10 INIT transmissions + 10 RESP receptions + listen.
        assert!(la.tx_s > 0.0 && la.rx_s > 0.0);
        // Responder: mirror image.
        assert!(lb.tx_s > 0.0 && lb.rx_s > 0.0);
        // Listening dominates the initiator's receive time.
        assert!(la.rx_s > 10.0 * 250e-6);
    }
}
