//! Ranging protocol messages.
//!
//! The concurrent ranging scheme uses two frame types (paper, Fig. 3): a
//! broadcast *INIT* from the initiator and a *RESP* from each responder
//! carrying its receive and transmit timestamps (`t_rx,i`, `t_tx,i`) in the
//! payload, which the initiator needs for the SS-TWR anchor distance
//! (Eq. 2).

use uwb_radio::DeviceTime;

/// Payload size of an INIT frame in bytes (header + round counter + CRC);
/// with the paper's PHY configuration this yields the 178.5 µs minimum
/// response delay of Sect. III.
pub const INIT_PAYLOAD_BYTES: usize = 14;

/// Payload size of a RESP frame in bytes: two 40-bit timestamps, the
/// responder ID, round counter, header and CRC.
pub const RESP_PAYLOAD_BYTES: usize = 24;

/// A ranging frame payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RangingMessage {
    /// Broadcast ranging initiation.
    Init {
        /// Round counter, so stale responses can be discarded.
        round: u32,
    },
    /// A responder's reply.
    Resp {
        /// Round this reply answers.
        round: u32,
        /// The responder's identifier (drives slot + pulse shape in the
        /// combined scheme).
        responder_id: u32,
        /// The responder's INIT receive timestamp `t_rx,i`.
        rx_timestamp: DeviceTime,
        /// The responder's RESP transmit timestamp `t_tx,i` (known exactly
        /// thanks to delayed transmission).
        tx_timestamp: DeviceTime,
    },
}

impl RangingMessage {
    /// The round counter carried by the message.
    pub fn round(&self) -> u32 {
        match *self {
            Self::Init { round } | Self::Resp { round, .. } => round,
        }
    }

    /// The on-air payload size in bytes for this message type.
    pub fn payload_bytes(&self) -> usize {
        match self {
            Self::Init { .. } => INIT_PAYLOAD_BYTES,
            Self::Resp { .. } => RESP_PAYLOAD_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_accessor() {
        assert_eq!(RangingMessage::Init { round: 3 }.round(), 3);
        let resp = RangingMessage::Resp {
            round: 7,
            responder_id: 2,
            rx_timestamp: DeviceTime::ZERO,
            tx_timestamp: DeviceTime::ZERO,
        };
        assert_eq!(resp.round(), 7);
    }

    #[test]
    fn payload_sizes() {
        assert_eq!(RangingMessage::Init { round: 0 }.payload_bytes(), 14);
        let resp = RangingMessage::Resp {
            round: 0,
            responder_id: 0,
            rx_timestamp: DeviceTime::ZERO,
            tx_timestamp: DeviceTime::ZERO,
        };
        assert_eq!(resp.payload_bytes(), 24);
    }

    #[test]
    fn init_payload_gives_paper_min_delay() {
        // Cross-check: the INIT payload size reproduces the 178.5 µs
        // minimum response delay quoted in Sect. III.
        let timing = uwb_radio::FrameTiming::new(&uwb_radio::RadioConfig::default());
        let us = timing.min_response_delay_s(INIT_PAYLOAD_BYTES) * 1e6;
        assert!((us - 178.5).abs() < 0.5);
    }
}
