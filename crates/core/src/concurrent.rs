//! The concurrent ranging engine: one broadcast, N−1 simultaneous replies,
//! all distances from a single CIR (paper, Sect. III–VIII).
//!
//! Round structure (Fig. 3):
//!
//! 1. The initiator broadcasts INIT (delayed TX, so `t_tx,init` is exact).
//! 2. Every responder `i` schedules RESP at
//!    `t_rx,i + Δ_RESP + δ_i` — where `δ_i` is its RPM slot delay
//!    (Sect. VII) — transmitting with its assigned pulse shape (Sect. V),
//!    and embeds `(t_rx,i, t_tx,i)` in the payload.
//! 3. The replies overlap at the initiator into one accumulation window.
//!    The strongest payload decodes (capture), giving the SS-TWR anchor
//!    distance `d_TWR` (Eq. 2). The CIR contains every responder's pulse.
//! 4. Search-and-subtract detection (Sect. IV) extracts the responses;
//!    the matched-filter bank identifies each pulse shape; slot decoding
//!    maps delays to RPM slots; `(slot, shape) → ID`; distances follow
//!    from Eq. 4 with slot-delay compensation.

use crate::assignment::CombinedScheme;
use crate::detection::{DetectionOutcome, SearchSubtractConfig, SearchSubtractDetector};
use crate::error::RangingError;
use crate::estimate::TwrTimestamps;
use crate::pipeline::{
    DetectStage, RenderStage, RoundContext, SlotDecodeStage, SlotReference, SolveStage,
};
use crate::protocol::{RangingMessage, INIT_PAYLOAD_BYTES, RESP_PAYLOAD_BYTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uwb_channel::Arrival;
use uwb_netsim::{FaultInjector, NodeApi, NodeId, Protocol, ReceivedFrame, Reception};
use uwb_radio::{Cir, DeviceTime, Prf, CIR_SAMPLE_PERIOD_S, PAPER_RESPONSE_DELAY_S};

/// Configuration of a concurrent ranging deployment.
#[derive(Debug, Clone)]
pub struct ConcurrentConfig {
    /// The slot/shape assignment scheme (Sect. VIII).
    pub scheme: CombinedScheme,
    /// The common response delay `Δ_RESP` (paper: 290 µs).
    pub response_delay_s: f64,
    /// Detector configuration (Sect. IV).
    pub detector: SearchSubtractConfig,
    /// CIR signal-to-noise ratio in dB, referenced to the strongest
    /// arrival (models receiver noise + AGC).
    pub cir_snr_db: f64,
    /// Nominal accumulator tap where the receiver places the first path of
    /// the frame it locked onto (the DW1000's `FP_INDEX` neighbourhood).
    pub first_path_tap: usize,
    /// Number of ranging rounds to run.
    pub rounds: u32,
    /// Gap between rounds, seconds.
    pub round_gap_s: f64,
    /// Multipath rejection (Sect. VII's payoff): when enabled, the
    /// detector extracts `expected + extra_detections` peaks and keeps one
    /// response per decoded `(slot, shape)` pair: the *earliest* among the
    /// candidates within [`ConcurrentConfig::mpc_guard_margin_db`] of the
    /// group's strongest — a direct path precedes its reflections, while
    /// the margin discards weak subtraction artefacts and noise peaks that
    /// happen to land early in the slot. Only meaningful with a scheme
    /// that actually separates responders (capacity > 1).
    pub mpc_guard: bool,
    /// Additional detections to run when `mpc_guard` is enabled, giving
    /// the dedup step candidates beyond the strongest MPCs.
    pub extra_detections: usize,
    /// Amplitude margin (dB) below a slot's strongest candidate within
    /// which an earlier candidate is still accepted as the direct path.
    pub mpc_guard_margin_db: f64,
    /// Model the DW1000's delayed-TX truncation in the engine's scheduled
    /// transmissions (default true). Set false — together with
    /// [`uwb_netsim::SimConfig::tx_quantization`] — to quantify what an
    /// ideal-resolution transmitter would buy (the hardware limitation of
    /// Sect. III).
    pub quantize_tx: bool,
    /// Noise gate for guard-mode candidates: responses weaker than this
    /// factor times the CIR noise-floor estimate (the mean noise
    /// magnitude, ≈1.25 σ) are discarded as matched-filter noise peaks.
    /// The maximum over the ~1000 independent noise positions in the
    /// window reaches ≈3.7 σ ≈ 3× the floor, so the default of 4 (≈5 σ)
    /// rejects noise with margin while keeping responses ≥13 dB over σ.
    pub mpc_noise_gate: f64,
    /// How many times a timed-out round is re-broadcast before it is
    /// recorded as failed (default 0: fail fast, the seed behaviour).
    pub max_retries: u32,
    /// Base backoff added to the INIT margin on the first retry; doubles
    /// on each further attempt (bounded by `max_retries`).
    pub retry_backoff_s: f64,
}

impl ConcurrentConfig {
    /// A configuration with the paper's defaults for a given scheme.
    pub fn new(scheme: CombinedScheme) -> Self {
        Self {
            scheme,
            response_delay_s: PAPER_RESPONSE_DELAY_S,
            detector: SearchSubtractConfig::default(),
            cir_snr_db: 30.0,
            first_path_tap: 16,
            rounds: 1,
            round_gap_s: 2e-3,
            mpc_guard: false,
            extra_detections: 4,
            mpc_guard_margin_db: 12.0,
            mpc_noise_gate: 4.0,
            quantize_tx: true,
            max_retries: 0,
            retry_backoff_s: 500e-6,
        }
    }

    /// Enables multipath rejection via slot/shape deduplication.
    #[must_use]
    pub fn with_mpc_guard(mut self) -> Self {
        self.mpc_guard = true;
        self
    }

    /// Sets the number of rounds.
    #[must_use]
    pub fn with_rounds(mut self, rounds: u32) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the CIR SNR.
    #[must_use]
    pub fn with_snr_db(mut self, snr_db: f64) -> Self {
        self.cir_snr_db = snr_db;
        self
    }

    /// Allows each round up to `retries` re-broadcasts after a watchdog
    /// timeout before it counts as failed.
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Sets the base retry backoff (doubles per attempt).
    #[must_use]
    pub fn with_retry_backoff_s(mut self, backoff_s: f64) -> Self {
        self.retry_backoff_s = backoff_s;
        self
    }
}

/// One responder's estimate out of a concurrent round.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponderEstimate {
    /// Decoded responder ID (`shape · N_RPM + slot`), if slot decoding
    /// succeeded.
    pub id: Option<u32>,
    /// Decoded pulse-shape index.
    pub shape_index: usize,
    /// Decoded RPM slot.
    pub slot: Option<usize>,
    /// Estimated distance (Eq. 4 with RPM compensation), meters.
    pub distance_m: f64,
    /// The response's CIR delay.
    pub tau_s: f64,
    /// Estimated amplitude magnitude.
    pub amplitude: f64,
}

/// Whether a deployed responder was resolved in a given round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResponderHealth {
    /// The responder was identified and ranged this round.
    Resolved,
    /// The responder produced no identified estimate this round (lost
    /// reply, undecoded slot, dropped by the guard…).
    Missing,
}

/// Per-responder status of one round — the graceful-degradation view: a
/// round with missing responders still completes with partial results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResponderStatus {
    /// The deployed responder's ID.
    pub id: u32,
    /// Whether it was resolved this round.
    pub health: ResponderHealth,
}

/// The result of one concurrent ranging round at the initiator.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// Round counter.
    pub round: u32,
    /// The SS-TWR anchor distance from the decoded payload (Eq. 2).
    pub d_twr_m: f64,
    /// ID of the responder whose payload decoded (the anchor).
    pub anchor_id: u32,
    /// Per-responder estimates, sorted by delay (includes the anchor).
    pub estimates: Vec<ResponderEstimate>,
    /// The synthesized accumulator the estimates came from.
    pub cir: Cir,
    /// The receiver's reported first-path index (taps, fractional).
    pub fp_index: f64,
    /// Full detection output (responses + diagnostics).
    pub detection: DetectionOutcome,
    /// Broadcast attempts this round took (1 = no retry was needed).
    pub attempts: u32,
    /// Status of every deployed responder, ordered by ID.
    pub responder_status: Vec<ResponderStatus>,
}

impl RoundOutcome {
    /// The estimate decoded as responder `id`, if any.
    pub fn estimate_for(&self, id: u32) -> Option<&ResponderEstimate> {
        self.estimates.iter().find(|e| e.id == Some(id))
    }

    /// True when every deployed responder was resolved this round.
    pub fn is_complete(&self) -> bool {
        self.responder_status
            .iter()
            .all(|s| s.health == ResponderHealth::Resolved)
    }

    /// IDs of deployed responders that went missing this round.
    pub fn missing_ids(&self) -> Vec<u32> {
        self.responder_status
            .iter()
            .filter(|s| s.health == ResponderHealth::Missing)
            .map(|s| s.id)
            .collect()
    }
}

/// Timer-token bit marking a round watchdog (low 32 bits carry the round).
const WATCHDOG_BIT: u64 = 1 << 32;

/// The concurrent ranging protocol engine.
///
/// Drive it with [`uwb_netsim::Simulator::run`]; collect results from
/// [`ConcurrentEngine::outcomes`].
#[derive(Debug)]
pub struct ConcurrentEngine {
    initiator: NodeId,
    /// Responder node ↔ responder ID (determines slot + pulse shape).
    responder_ids: Vec<(NodeId, u32)>,
    config: ConcurrentConfig,
    /// The pipeline stages this plane drives: render → detect → slot
    /// decode → solve, each the workspace's single implementation.
    render: RenderStage,
    detect: DetectStage<SearchSubtractDetector>,
    slot_decode: SlotDecodeStage,
    solve: SolveStage,
    /// Reused per-round resources (detection plans/buffers and — lazily,
    /// from the simulator's fault plan — the receiver-side fault
    /// injector, which shares the plan seed with the in-flight injector
    /// but draws from disjoint domains, so the two never correlate). One
    /// context per engine, so every round after the first runs the
    /// detector allocation-free.
    ctx: RoundContext,
    rng: StdRng,
    current_round: u32,
    init_tx: Option<DeviceTime>,
    /// Broadcast attempts made for the current round (0 = none yet).
    attempts: u32,
    /// Completed round outcomes.
    pub outcomes: Vec<RoundOutcome>,
    /// Rounds that failed (no decodable payload / detection error).
    pub failed_rounds: Vec<(u32, RangingError)>,
    /// Watchdog-triggered re-broadcasts performed across the run.
    pub retries: u64,
    /// Rounds that completed only thanks to a retry.
    pub recovered_rounds: u64,
}

impl ConcurrentEngine {
    /// Creates an engine.
    ///
    /// # Errors
    ///
    /// Propagates detector construction errors (empty template bank,
    /// invalid upsampling) and rejects responder IDs beyond the scheme
    /// capacity.
    pub fn new(
        initiator: NodeId,
        responder_ids: Vec<(NodeId, u32)>,
        config: ConcurrentConfig,
        seed: u64,
    ) -> Result<Self, RangingError> {
        for &(_, id) in &responder_ids {
            config.scheme.assign(id)?;
        }
        let detector = SearchSubtractDetector::from_registers(
            config.scheme.shapes(),
            uwb_radio::Channel::Ch7,
            config.detector,
        )?;
        // Offsets are measured between detected peaks, so the anchor
        // reference is the *observed* arrival (the delayed-TX truncation
        // shifts every offset equally and cancels in the difference).
        let slot_decode =
            SlotDecodeStage::new(*config.scheme.plan(), SlotReference::ObservedAnchor);
        Ok(Self {
            initiator,
            responder_ids,
            config,
            render: RenderStage::new(Prf::Mhz64),
            detect: DetectStage::new(detector),
            slot_decode,
            solve: SolveStage,
            ctx: RoundContext::new(),
            rng: StdRng::seed_from_u64(seed),
            current_round: 0,
            init_tx: None,
            attempts: 0,
            outcomes: Vec::new(),
            failed_rounds: Vec::new(),
            retries: 0,
            recovered_rounds: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &ConcurrentConfig {
        &self.config
    }

    /// Number of responders in the deployment.
    pub fn responder_count(&self) -> usize {
        self.responder_ids.len()
    }

    fn responder_id(&self, node: NodeId) -> Option<u32> {
        self.responder_ids
            .iter()
            .find(|(n, _)| *n == node)
            .map(|&(_, id)| id)
    }

    fn quantize(&self, t: DeviceTime) -> DeviceTime {
        if self.config.quantize_tx {
            t.quantize_tx()
        } else {
            t
        }
    }

    fn start_round(&mut self, api: &mut NodeApi<RangingMessage>) {
        // Exponential backoff on re-broadcasts: 200 µs base margin, plus
        // backoff · 2^(attempt−1) once the watchdog has fired.
        let backoff = if self.attempts > 0 {
            self.config.retry_backoff_s * f64::from(1u32 << (self.attempts - 1).min(16))
        } else {
            0.0
        };
        self.attempts += 1;
        let at = self.quantize(
            api.device_now()
                .wrapping_add_seconds(200e-6 + backoff)
                .expect("margin is positive"),
        );
        self.init_tx = Some(at);
        api.transmit_at(
            at,
            RangingMessage::Init {
                round: self.current_round,
            },
            INIT_PAYLOAD_BYTES,
        );
        // Listen across the response delay plus the RPM slot span.
        api.record_listen(self.config.response_delay_s + crate::rpm::DELTA_MAX_S);
        // Watchdog: a lost or undecodable reply window must not stall the
        // remaining rounds.
        let timeout = self.config.response_delay_s + crate::rpm::DELTA_MAX_S + 1e-3;
        api.set_timer(timeout, WATCHDOG_BIT | u64::from(self.current_round));
    }

    /// Builds the initiator's accumulator from every frame in the window.
    fn build_cir(&mut self, reception: &Reception<RangingMessage>, round: u32) -> (Cir, f64) {
        // The receiver locks to the decoded frame's first path and places
        // it near `first_path_tap`; the sub-tap phase is unknown (the
        // "unknown time offset" of Sect. IV) but the DW1000 reports the
        // resulting FP_INDEX, which we model here.
        let sub_tap: f64 = self.rng.random::<f64>();
        let fp_index = self.config.first_path_tap as f64 + sub_tap;
        let window_start = reception.rx_true_global_s - fp_index * CIR_SAMPLE_PERIOD_S;

        let mut arrivals: Vec<Arrival> = Vec::new();
        let mut strongest: f64 = 0.0;
        for frame in &reception.frames {
            for a in &frame.arrivals {
                let absolute = Arrival {
                    delay_s: frame.tx_rmarker_global_s + a.delay_s,
                    amplitude: a.amplitude,
                    pulse: a.pulse,
                };
                strongest = strongest.max(absolute.amplitude.abs());
                arrivals.push(absolute);
            }
        }
        // Receiver-side faults: an SNR dip raises this round's noise floor…
        let snr_db = self.config.cir_snr_db
            - self
                .ctx
                .injector_mut()
                .map_or(0.0, |inj| inj.snr_dip_db(u64::from(round)));
        let noise_sigma = strongest * 10f64.powf(-snr_db / 20.0);
        let mut cir = self
            .render
            .render(&arrivals, window_start, noise_sigma, &mut self.rng);
        // …and accumulator read-out glitches replace taps with garbage.
        if let Some(inj) = self.ctx.injector_mut() {
            uwb_channel::apply_tap_corruption(&mut cir, inj, u64::from(round));
        }
        (cir, fp_index)
    }

    fn process_round(
        &mut self,
        reception: &Reception<RangingMessage>,
        decoded: &ReceivedFrame<RangingMessage>,
    ) -> Result<RoundOutcome, RangingError> {
        let RangingMessage::Resp {
            round,
            responder_id: anchor_id,
            rx_timestamp,
            tx_timestamp,
        } = decoded.payload
        else {
            return Err(RangingError::NoDecodablePayload);
        };
        let init_tx = self.init_tx.ok_or(RangingError::RoundTimeout)?;

        // Eq. 2: the anchor distance. The anchor's own RPM slot delay is
        // part of its reply time and cancels in (t_tx − t_rx) — SS-TWR is
        // agnostic to the actual reply delay.
        let timestamps = TwrTimestamps {
            init_tx,
            init_rx: reception.rx_device_time,
            resp_rx: rx_timestamp,
            resp_tx: tx_timestamp,
        };
        let d_twr_m = self.solve.anchor_m(&timestamps);
        let anchor_slot = self.config.scheme.assign(anchor_id)?.slot;

        // Physics: synthesize what the accumulator holds.
        let (cir, fp_index) = self.build_cir(reception, round);

        // Sect. IV: detect the N−1 strongest responses (plus extra
        // candidates when multipath rejection is on).
        let expected = self.responder_ids.len();
        let detect_count = if self.config.mpc_guard {
            expected + self.config.extra_detections
        } else {
            expected
        };
        let detection = self.detect.detect(&mut self.ctx, &cir, detect_count)?;

        // The anchor response is the one nearest the reported FP_INDEX.
        let tau_anchor_nominal = fp_index * CIR_SAMPLE_PERIOD_S;
        let anchor_tau = detection
            .responses
            .iter()
            .map(|r| r.tau_s)
            .min_by(|a, b| {
                (a - tau_anchor_nominal)
                    .abs()
                    .partial_cmp(&(b - tau_anchor_nominal).abs())
                    .expect("finite delays")
            })
            .ok_or(RangingError::InsufficientResponses {
                requested: expected,
                found: 0,
            })?;

        let slot_spacing_s = self.slot_decode.plan().slot_spacing_s();
        let mut estimates: Vec<ResponderEstimate> = detection
            .responses
            .iter()
            .map(|resp| {
                let offset = resp.tau_s - anchor_tau;
                let slot = self.slot_decode.decode(offset, anchor_slot, d_twr_m);
                let id = slot.and_then(|s| self.config.scheme.id_from(s, resp.shape_index));
                let distance_m = self.solve.concurrent_m(
                    d_twr_m,
                    resp.tau_s,
                    anchor_tau,
                    slot.unwrap_or(anchor_slot),
                    anchor_slot,
                    slot_spacing_s,
                );
                ResponderEstimate {
                    id,
                    shape_index: resp.shape_index,
                    slot,
                    distance_m,
                    tau_s: resp.tau_s,
                    amplitude: resp.amplitude.abs(),
                }
            })
            .collect();

        if self.config.mpc_guard {
            // Per (slot, shape) group: the direct path precedes its
            // reflections, but weak noise/subtraction artefacts can land
            // anywhere in the slot — so accept the earliest candidate
            // within an amplitude margin of the group's strongest, and
            // drop responses that decode to no slot at all. When a
            // candidate's best-scoring shape is already taken in its slot
            // and the runner-up template scored nearly as well (weak
            // responses misclassify between neighbouring shapes), fall
            // back to the runner-up — a constraint-aware decode exploiting
            // that (slot, shape) pairs are unique by construction.
            let margin = 10f64.powf(-self.config.mpc_guard_margin_db / 20.0);
            // Robust mean-noise-magnitude estimate from the detector's
            // FINAL residual — every detected response has been
            // subtracted, so the residual is signal-free even in a
            // crowded window (median = 1.1774σ, mean = 1.2533σ for
            // Rayleigh magnitudes).
            let noise_reference = detection
                .diagnostics
                .residual_mf_magnitude
                .last()
                .unwrap_or(&detection.diagnostics.upsampled_magnitude);
            let noise_gate = self.config.mpc_noise_gate
                * uwb_dsp::stats::median(noise_reference)
                * (1.2533 / 1.1774);
            let mut strongest: std::collections::HashMap<(usize, usize), f64> =
                std::collections::HashMap::new();
            for e in &estimates {
                if let Some(slot) = e.slot {
                    let entry = strongest.entry((slot, e.shape_index)).or_insert(0.0);
                    *entry = entry.max(e.amplitude);
                }
            }
            let scores: std::collections::HashMap<u64, Vec<f64>> = detection
                .responses
                .iter()
                .map(|r| (r.tau_s.to_bits(), r.shape_scores.to_vec()))
                .collect();
            let mut taken: std::collections::HashSet<(usize, usize)> =
                std::collections::HashSet::new();
            let mut kept: Vec<ResponderEstimate> = Vec::new();
            for e in &estimates {
                let Some(slot) = e.slot else { continue };
                if e.amplitude < noise_gate {
                    continue;
                }
                let group_peak = strongest[&(slot, e.shape_index)];
                if e.amplitude < group_peak * margin {
                    continue;
                }
                // Shapes ranked by identification score, best first.
                let response_scores = scores.get(&e.tau_s.to_bits());
                let ranked: Vec<usize> = match response_scores {
                    Some(s) => {
                        let mut idx: Vec<usize> = (0..s.len()).collect();
                        idx.sort_by(|&a, &b| {
                            s[b].partial_cmp(&s[a]).unwrap_or(std::cmp::Ordering::Equal)
                        });
                        idx
                    }
                    None => vec![e.shape_index],
                };
                let best_score = response_scores
                    .and_then(|s| ranked.first().map(|&i| s[i]))
                    .unwrap_or(0.0);
                for &shape in &ranked {
                    let close_enough = response_scores
                        .map_or(shape == e.shape_index, |s| s[shape] >= best_score / 1.2);
                    if !close_enough {
                        break; // ranked order: the rest score even lower
                    }
                    if taken.insert((slot, shape)) {
                        let mut accepted = e.clone();
                        accepted.shape_index = shape;
                        accepted.id = self.config.scheme.id_from(slot, shape);
                        kept.push(accepted);
                        break;
                    }
                }
            }
            estimates = kept;
        }

        // Graceful degradation: report every deployed responder's health
        // rather than failing the round when some went missing.
        let mut responder_status: Vec<ResponderStatus> = self
            .responder_ids
            .iter()
            .map(|&(_, id)| ResponderStatus {
                id,
                health: if estimates.iter().any(|e| e.id == Some(id)) {
                    ResponderHealth::Resolved
                } else {
                    ResponderHealth::Missing
                },
            })
            .collect();
        responder_status.sort_by_key(|s| s.id);
        let missing = responder_status
            .iter()
            .filter(|s| s.health == ResponderHealth::Missing)
            .count();
        if missing > 0 && uwb_obs::enabled() {
            uwb_obs::counter("faults.recovered.partial", 1);
        }

        if uwb_obs::enabled() {
            let unidentified = estimates.iter().filter(|e| e.id.is_none()).count();
            uwb_obs::counter("concurrent.rounds", 1);
            if unidentified > 0 || estimates.is_empty() {
                // Post-mortem material: a response we could not attribute
                // to a responder (or a round with nothing kept at all).
                uwb_obs::counter("concurrent.unidentified", unidentified.max(1) as u64);
                uwb_obs::flight_record(|| uwb_obs::CirSnapshot {
                    reason: "unidentified_response",
                    taps_re: cir.taps().iter().map(|z| z.re).collect(),
                    taps_im: cir.taps().iter().map(|z| z.im).collect(),
                    sample_period_s: cir.sample_period_s(),
                    peaks: detection
                        .responses
                        .iter()
                        .map(|r| uwb_obs::SnapshotPeak {
                            tau_s: r.tau_s,
                            amplitude: r.amplitude.abs(),
                            shape: r.shape_index,
                        })
                        .collect(),
                    truth_tau_s: Vec::new(),
                });
            }
            uwb_obs::event("concurrent.round", || {
                vec![
                    ("round", round.into()),
                    ("anchor_id", anchor_id.into()),
                    ("d_twr_m", d_twr_m.into()),
                    ("anchor_tau_s", anchor_tau.into()),
                    ("estimates", estimates.len().into()),
                    ("unidentified", unidentified.into()),
                ]
            });
        }

        Ok(RoundOutcome {
            round,
            d_twr_m,
            anchor_id,
            estimates,
            cir,
            fp_index,
            detection,
            attempts: self.attempts.max(1),
            responder_status,
        })
    }
}

impl Protocol<RangingMessage> for ConcurrentEngine {
    fn on_start(&mut self, node: NodeId, api: &mut NodeApi<RangingMessage>) {
        if node == self.initiator && self.config.rounds > 0 {
            self.start_round(api);
        }
    }

    fn on_reception(
        &mut self,
        node: NodeId,
        reception: &Reception<RangingMessage>,
        api: &mut NodeApi<RangingMessage>,
    ) {
        let Some(decoded) = reception.decoded() else {
            return;
        };
        match decoded.payload {
            RangingMessage::Init { round } => {
                let Some(my_id) = self.responder_id(node) else {
                    return;
                };
                let offset = self
                    .config
                    .scheme
                    .response_offset_s(my_id)
                    .expect("ids validated at construction");
                let tx = self.quantize(
                    reception
                        .rx_device_time
                        .wrapping_add_seconds(self.config.response_delay_s + offset)
                        .expect("delay is positive"),
                );
                api.transmit_at(
                    tx,
                    RangingMessage::Resp {
                        round,
                        responder_id: my_id,
                        rx_timestamp: reception.rx_device_time,
                        tx_timestamp: tx,
                    },
                    RESP_PAYLOAD_BYTES,
                );
            }
            RangingMessage::Resp { round, .. }
                if node == self.initiator && round == self.current_round =>
            {
                if !self.ctx.has_injector() && api.faults().is_active() {
                    self.ctx.install_injector(FaultInjector::new(api.faults()));
                }
                let decoded = decoded.clone();
                match self.process_round(reception, &decoded) {
                    Ok(outcome) => {
                        if self.attempts > 1 {
                            // The round only completed because a watchdog
                            // re-broadcast it.
                            self.recovered_rounds += 1;
                            if uwb_obs::enabled() {
                                uwb_obs::counter("faults.recovered.retry", 1);
                            }
                        }
                        self.outcomes.push(outcome);
                    }
                    Err(e) => self.failed_rounds.push((round, e)),
                }
                self.attempts = 0;
                self.current_round += 1;
                if self.current_round < self.config.rounds {
                    api.set_timer(self.config.round_gap_s, u64::from(self.current_round));
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, node: NodeId, token: u64, api: &mut NodeApi<RangingMessage>) {
        if node != self.initiator {
            return;
        }
        if token & WATCHDOG_BIT != 0 {
            let round = (token & u64::from(u32::MAX)) as u32;
            if round == self.current_round {
                if self.attempts <= self.config.max_retries {
                    // Bounded retry: re-broadcast the same round with an
                    // exponentially backed-off margin instead of giving up.
                    self.retries += 1;
                    self.start_round(api);
                    return;
                }
                // The round never completed (lost INIT/RESP or nothing
                // decodable), even after every allowed retry: record it
                // and move on.
                self.failed_rounds.push((round, RangingError::RoundTimeout));
                self.attempts = 0;
                self.current_round += 1;
                if self.current_round < self.config.rounds {
                    self.start_round(api);
                }
            }
        } else {
            self.start_round(api);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpm::SlotPlan;
    use uwb_channel::{ChannelModel, Room};
    use uwb_netsim::{NodeConfig, SimConfig, Simulator};

    /// Builds a simulator with an initiator at the origin and responders at
    /// the given positions with sequential IDs modulo the scheme capacity
    /// (ID reuse = anonymous ranging, as in the paper's Fig. 4 setup where
    /// all responders share the default pulse shape and slot).
    fn setup(
        positions: &[(f64, f64)],
        scheme: CombinedScheme,
        channel: ChannelModel,
        seed: u64,
    ) -> (Simulator<RangingMessage>, ConcurrentEngine) {
        let mut sim = Simulator::new(channel, SimConfig::default(), seed);
        let initiator = sim.add_node(NodeConfig::at(0.0, 0.0));
        let mut responders = Vec::new();
        for (i, &(x, y)) in positions.iter().enumerate() {
            let id = (i as u32) % scheme.capacity();
            let assignment = scheme.assign(id).unwrap();
            let node = sim.add_node(NodeConfig::at(x, y).with_pulse_shape(assignment.register));
            responders.push((node, id));
        }
        let config = ConcurrentConfig::new(scheme);
        let engine = ConcurrentEngine::new(initiator, responders, config, seed).unwrap();
        (sim, engine)
    }

    fn single_slot_scheme(shapes: usize) -> CombinedScheme {
        CombinedScheme::new(SlotPlan::new(1).unwrap(), shapes).unwrap()
    }

    #[test]
    fn three_responders_fig4_distances() {
        // The paper's Fig. 4 scenario: responders at 3, 6 and 10 m.
        let scheme = single_slot_scheme(1);
        let (mut sim, mut engine) = setup(
            &[(3.0, 0.0), (6.0, 0.0), (10.0, 0.0)],
            scheme,
            ChannelModel::free_space(),
            42,
        );
        sim.run(&mut engine, 1.0);
        assert_eq!(
            engine.outcomes.len(),
            1,
            "failed: {:?}",
            engine.failed_rounds
        );
        let outcome = &engine.outcomes[0];
        assert_eq!(outcome.estimates.len(), 3);
        // Estimates sorted by delay → by distance here. The anchor (first)
        // is TWR-exact; the others carry the DW1000's ±8 ns delayed-TX
        // truncation (up to ±1.2 m — the hardware limit the paper declares
        // out of scope in Sect. III).
        let dists: Vec<f64> = outcome.estimates.iter().map(|e| e.distance_m).collect();
        assert!((dists[0] - 3.0).abs() < 0.1, "anchor {dists:?}");
        for (est, truth) in dists.iter().zip([3.0, 6.0, 10.0]) {
            assert!(
                (est - truth).abs() < 1.3,
                "estimated {est} m for true {truth} m (all: {dists:?})"
            );
        }
    }

    #[test]
    fn anchor_distance_comes_from_twr() {
        let scheme = single_slot_scheme(1);
        let (mut sim, mut engine) = setup(
            &[(4.0, 0.0), (9.0, 0.0)],
            scheme,
            ChannelModel::free_space(),
            7,
        );
        sim.run(&mut engine, 1.0);
        let outcome = &engine.outcomes[0];
        // The anchor (strongest = closest in free space) is responder 0.
        assert_eq!(outcome.anchor_id, 0);
        assert!(
            (outcome.d_twr_m - 4.0).abs() < 0.1,
            "d_twr {}",
            outcome.d_twr_m
        );
    }

    #[test]
    fn pulse_shapes_identify_responders() {
        // Two responders with different shapes (Sect. V / Fig. 6 setup:
        // d1 = 4 m with s1, d2 = 10 m with s3).
        let scheme = single_slot_scheme(3);
        // IDs 0,1,2 within a single slot map to shapes 0,1,2; use ids 0 and 2.
        let mut sim = Simulator::new(ChannelModel::free_space(), SimConfig::default(), 9);
        let initiator = sim.add_node(NodeConfig::at(0.0, 0.0));
        let r0 = sim.add_node(
            NodeConfig::at(4.0, 0.0).with_pulse_shape(scheme.assign(0).unwrap().register),
        );
        let r2 = sim.add_node(
            NodeConfig::at(10.0, 0.0).with_pulse_shape(scheme.assign(2).unwrap().register),
        );
        let config = ConcurrentConfig::new(scheme);
        let mut engine =
            ConcurrentEngine::new(initiator, vec![(r0, 0), (r2, 2)], config, 9).unwrap();
        sim.run(&mut engine, 1.0);
        let outcome = &engine.outcomes[0];
        assert_eq!(outcome.estimates.len(), 2);
        assert_eq!(outcome.estimates[0].shape_index, 0);
        assert_eq!(outcome.estimates[1].shape_index, 2);
        assert_eq!(outcome.estimates[0].id, Some(0));
        assert_eq!(outcome.estimates[1].id, Some(2));
    }

    #[test]
    fn rpm_slots_separate_and_decode() {
        // Two responders at the SAME distance in different slots: without
        // RPM their responses would overlap; with it they separate and the
        // slot indices decode their IDs.
        let scheme = CombinedScheme::new(SlotPlan::new(4).unwrap(), 1).unwrap();
        let (mut sim, mut engine) = setup(
            &[(6.0, 0.0), (0.0, 6.0)], // ids 0, 1 → slots 0, 1
            scheme,
            ChannelModel::free_space(),
            11,
        );
        sim.run(&mut engine, 1.0);
        assert_eq!(
            engine.outcomes.len(),
            1,
            "failed: {:?}",
            engine.failed_rounds
        );
        let outcome = &engine.outcomes[0];
        let ids: Vec<Option<u32>> = outcome.estimates.iter().map(|e| e.id).collect();
        assert!(
            ids.contains(&Some(0)) && ids.contains(&Some(1)),
            "ids {ids:?}"
        );
        for e in &outcome.estimates {
            // Non-anchor distances carry the ±8 ns TX-grid error (≤1.2 m).
            assert!(
                (e.distance_m - 6.0).abs() < 1.3,
                "distance {} for id {:?}",
                e.distance_m,
                e.id
            );
        }
    }

    #[test]
    fn combined_scheme_nine_responders_fig8() {
        // The paper's Fig. 8: 9 responders, 4 slots × 3 shapes.
        let scheme = CombinedScheme::new(SlotPlan::new(4).unwrap(), 3).unwrap();
        let positions: Vec<(f64, f64)> = (0..9)
            .map(|i| {
                let angle = i as f64 * 0.7;
                let radius = 3.0 + i as f64 * 0.9;
                (radius * angle.cos(), radius * angle.sin())
            })
            .collect();
        let (mut sim, mut engine) = setup(&positions, scheme, ChannelModel::free_space(), 13);
        sim.run(&mut engine, 1.0);
        assert_eq!(
            engine.outcomes.len(),
            1,
            "failed: {:?}",
            engine.failed_rounds
        );
        let outcome = &engine.outcomes[0];
        assert_eq!(outcome.estimates.len(), 9);
        let mut correct = 0;
        for (i, &(x, y)) in positions.iter().enumerate() {
            let truth = (x * x + y * y).sqrt();
            if let Some(est) = outcome.estimate_for(i as u32) {
                // ±8 ns TX-grid error bounds non-anchor accuracy.
                if (est.distance_m - truth).abs() < 1.3 {
                    correct += 1;
                }
            }
        }
        assert!(
            correct >= 8,
            "only {correct}/9 responders correctly resolved"
        );
    }

    #[test]
    fn multiple_rounds_accumulate() {
        let scheme = single_slot_scheme(1);
        let mut sim = Simulator::new(ChannelModel::free_space(), SimConfig::default(), 17);
        let initiator = sim.add_node(NodeConfig::at(0.0, 0.0));
        let r = sim.add_node(NodeConfig::at(5.0, 0.0));
        let config = ConcurrentConfig::new(scheme).with_rounds(5);
        let mut engine = ConcurrentEngine::new(initiator, vec![(r, 0)], config, 17).unwrap();
        sim.run(&mut engine, 1.0);
        assert_eq!(engine.outcomes.len(), 5);
        for o in &engine.outcomes {
            assert!((o.d_twr_m - 5.0).abs() < 0.1);
        }
    }

    #[test]
    fn rpm_with_mpc_guard_resolves_multipath_room() {
        // The Sect. VII scenario: a far responder (10 m, weak) competes
        // with the near responder's strong wall reflections. Without RPM
        // the detector can pick an MPC instead of the far responder; with
        // RPM slots + the earliest-per-(slot, shape) guard, both resolve.
        let scheme = CombinedScheme::new(SlotPlan::new(4).unwrap(), 1).unwrap();
        let room = Room::rectangular(25.0, 8.0, 0.6);
        let channel = ChannelModel::in_room(room);
        let mut sim = Simulator::new(channel, SimConfig::default(), 19);
        let initiator = sim.add_node(NodeConfig::at(2.0, 4.0));
        let r0 = sim.add_node(NodeConfig::at(5.0, 4.0)); // 3 m, slot 0
        let r1 = sim.add_node(NodeConfig::at(12.0, 4.0)); // 10 m, slot 1
        let config = ConcurrentConfig::new(scheme).with_mpc_guard();
        let mut engine =
            ConcurrentEngine::new(initiator, vec![(r0, 0), (r1, 1)], config, 19).unwrap();
        sim.run(&mut engine, 1.0);
        assert_eq!(
            engine.outcomes.len(),
            1,
            "failed: {:?}",
            engine.failed_rounds
        );
        let o = &engine.outcomes[0];
        let d0 = o.estimate_for(0).map(|e| e.distance_m);
        let d1 = o.estimate_for(1).map(|e| e.distance_m);
        assert!(
            matches!(d0, Some(d) if (d - 3.0).abs() < 1.3),
            "responder 0: {d0:?}"
        );
        assert!(
            matches!(d1, Some(d) if (d - 10.0).abs() < 1.3),
            "responder 1: {d1:?}"
        );
    }

    #[test]
    fn rejects_ids_beyond_capacity() {
        let scheme = CombinedScheme::new(SlotPlan::new(2).unwrap(), 1).unwrap();
        let mut sim: Simulator<RangingMessage> =
            Simulator::new(ChannelModel::free_space(), SimConfig::default(), 23);
        let a = sim.add_node(NodeConfig::at(0.0, 0.0));
        let b = sim.add_node(NodeConfig::at(3.0, 0.0));
        let result = ConcurrentEngine::new(
            a,
            vec![(b, 5)], // capacity is 2
            ConcurrentConfig::new(scheme),
            23,
        );
        assert!(matches!(result, Err(RangingError::IdBeyondCapacity { .. })));
    }

    #[test]
    fn lost_receptions_do_not_stall_rounds() {
        // Receiver sensitivity set impossibly high: no frame ever decodes.
        // The watchdog must record every round as timed out instead of
        // silently stalling after round 0.
        let scheme = single_slot_scheme(1);
        let sim_config = SimConfig::default().with_min_decode_amplitude(1.0);
        let mut sim: Simulator<RangingMessage> =
            Simulator::new(ChannelModel::free_space(), sim_config, 51);
        let initiator = sim.add_node(NodeConfig::at(0.0, 0.0));
        let r = sim.add_node(NodeConfig::at(5.0, 0.0));
        let config = ConcurrentConfig::new(scheme).with_rounds(4);
        let mut engine = ConcurrentEngine::new(initiator, vec![(r, 0)], config, 51).unwrap();
        sim.run(&mut engine, 1.0);
        assert!(engine.outcomes.is_empty());
        assert_eq!(engine.failed_rounds.len(), 4, "{:?}", engine.failed_rounds);
        assert!(engine
            .failed_rounds
            .iter()
            .all(|(_, e)| matches!(e, RangingError::RoundTimeout)));
    }

    #[test]
    fn rounds_report_full_responder_status() {
        let scheme = single_slot_scheme(3);
        let (mut sim, mut engine) = setup(
            &[(3.0, 0.0), (6.0, 0.0)],
            scheme,
            ChannelModel::free_space(),
            42,
        );
        sim.run(&mut engine, 1.0);
        let o = &engine.outcomes[0];
        assert_eq!(o.attempts, 1);
        assert!(o.is_complete(), "status {:?}", o.responder_status);
        assert!(o.missing_ids().is_empty());
        assert_eq!(o.responder_status.len(), 2);
    }

    #[test]
    fn retries_recover_rounds_under_heavy_frame_loss() {
        // 50% frame loss: a round needs BOTH its INIT and its RESP to
        // survive, so each attempt succeeds with p = 0.25. Without retries
        // most rounds fail; with 4 retries per round the watchdog
        // re-broadcasts and cumulative success rises to ≈76%.
        let run = |retries: u32| {
            let scheme = single_slot_scheme(1);
            let plan = uwb_netsim::FaultPlan::none()
                .with_seed(5)
                .with_frame_loss(0.5)
                .unwrap();
            let mut sim = Simulator::new(
                ChannelModel::free_space(),
                SimConfig::default().with_faults(plan),
                77,
            );
            let initiator = sim.add_node(NodeConfig::at(0.0, 0.0));
            let r = sim.add_node(NodeConfig::at(5.0, 0.0));
            let config = ConcurrentConfig::new(scheme)
                .with_rounds(10)
                .with_retries(retries);
            let mut engine = ConcurrentEngine::new(initiator, vec![(r, 0)], config, 77).unwrap();
            sim.run(&mut engine, 5.0);
            assert_eq!(
                engine.outcomes.len() + engine.failed_rounds.len(),
                10,
                "rounds must never stall: {:?}",
                engine.failed_rounds
            );
            (
                engine.outcomes.len(),
                engine.retries,
                engine.recovered_rounds,
            )
        };
        let (ok_without, _, _) = run(0);
        let (ok_with, retries, recovered) = run(4);
        assert!(
            ok_with > ok_without,
            "retries did not help: {ok_with} vs {ok_without}"
        );
        assert!(retries > 0);
        assert!(recovered > 0);
        assert!(ok_with >= 6, "only {ok_with}/10 recovered");
    }

    #[test]
    fn partial_rounds_flag_missing_responders() {
        // Drop one responder's replies deterministically by seeding heavy
        // loss; with 2 responders and many rounds, some rounds resolve
        // only one — those must complete as partial, never fail or panic.
        let scheme = single_slot_scheme(2);
        let plan = uwb_netsim::FaultPlan::none()
            .with_seed(11)
            .with_frame_loss(0.4)
            .unwrap();
        let mut sim = Simulator::new(
            ChannelModel::free_space(),
            SimConfig::default().with_faults(plan),
            91,
        );
        let initiator = sim.add_node(NodeConfig::at(0.0, 0.0));
        let r0 = sim.add_node(NodeConfig::at(4.0, 0.0));
        let r1 = sim.add_node(
            NodeConfig::at(0.0, 8.0).with_pulse_shape(scheme.assign(1).unwrap().register),
        );
        let config = ConcurrentConfig::new(scheme)
            .with_rounds(12)
            .with_retries(2);
        let mut engine =
            ConcurrentEngine::new(initiator, vec![(r0, 0), (r1, 1)], config, 91).unwrap();
        sim.run(&mut engine, 5.0);
        assert_eq!(engine.outcomes.len() + engine.failed_rounds.len(), 12);
        let partial: Vec<_> = engine
            .outcomes
            .iter()
            .filter(|o| !o.is_complete())
            .collect();
        assert!(
            !partial.is_empty(),
            "expected at least one partial round at 40% loss"
        );
        for o in &partial {
            assert!(!o.missing_ids().is_empty());
            assert!(!o.estimates.is_empty(), "partial round still has results");
        }
    }

    #[test]
    fn snr_dip_and_tap_corruption_degrade_but_do_not_panic() {
        let scheme = single_slot_scheme(1);
        let plan = uwb_netsim::FaultPlan::none()
            .with_seed(3)
            .with_snr_dip(1.0, 25.0)
            .unwrap()
            .with_tap_corruption(0.1)
            .unwrap();
        let mut sim = Simulator::new(
            ChannelModel::free_space(),
            SimConfig::default().with_faults(plan),
            13,
        );
        let initiator = sim.add_node(NodeConfig::at(0.0, 0.0));
        let r = sim.add_node(NodeConfig::at(5.0, 0.0));
        let config = ConcurrentConfig::new(scheme).with_rounds(5);
        let mut engine = ConcurrentEngine::new(initiator, vec![(r, 0)], config, 13).unwrap();
        sim.run(&mut engine, 1.0);
        // Every round terminates one way or the other.
        assert_eq!(engine.outcomes.len() + engine.failed_rounds.len(), 5);
    }

    #[test]
    fn message_count_is_n_per_round() {
        // Sect. III's headline: one initiator TX + N−1 responder TX = N
        // transmissions; the initiator receives once.
        let scheme = single_slot_scheme(1);
        let (mut sim, mut engine) = setup(
            &[(3.0, 0.0), (7.0, 0.0), (11.0, 0.0), (15.0, 0.0)],
            scheme,
            ChannelModel::free_space(),
            29,
        );
        sim.run(&mut engine, 1.0);
        let tx_count = sim
            .trace()
            .iter()
            .filter(|e| matches!(e, uwb_netsim::TraceEvent::TxFired { .. }))
            .count();
        assert_eq!(tx_count, 5); // 1 INIT + 4 RESP
        let initiator_receptions = sim
            .trace()
            .iter()
            .filter(
                |e| matches!(e, uwb_netsim::TraceEvent::ReceptionEmitted { node, .. } if node.0 == 0),
            )
            .count();
        assert_eq!(initiator_receptions, 1);
    }
}
