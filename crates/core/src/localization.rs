//! Anchor-based localization from concurrent ranges — the paper's stated
//! future work ("we plan to use concurrent ranging to build an efficient
//! cooperative or anchor-based localization system").
//!
//! A mobile initiator obtains distances to all fixed anchors in a single
//! concurrent round; its position follows from nonlinear least squares
//! (Gauss–Newton) over the range equations.

use crate::error::RangingError;
use uwb_channel::Point2;

/// A fixed anchor with a measured distance to the target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeToAnchor {
    /// Anchor position, meters.
    pub anchor: Point2,
    /// Measured distance, meters.
    pub distance_m: f64,
}

/// Result of a multilateration solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositionFix {
    /// Estimated position.
    pub position: Point2,
    /// Root-mean-square range residual at the solution, meters.
    pub residual_rms_m: f64,
    /// Gauss–Newton iterations used.
    pub iterations: usize,
}

/// Solves for the 2-D position minimizing squared range residuals.
///
/// Starts from the centroid of the anchors and runs Gauss–Newton with a
/// simple step-halving line search.
///
/// # Errors
///
/// Returns [`RangingError::InvalidSchemeParameters`] with fewer than three
/// anchors (the 2-D problem is underdetermined) or non-finite inputs.
///
/// # Examples
///
/// ```
/// use concurrent_ranging::{multilaterate, RangeToAnchor};
/// use uwb_channel::Point2;
///
/// let truth = Point2::new(3.0, 2.0);
/// let anchors = [
///     Point2::new(0.0, 0.0),
///     Point2::new(10.0, 0.0),
///     Point2::new(0.0, 8.0),
/// ];
/// let ranges: Vec<RangeToAnchor> = anchors
///     .iter()
///     .map(|&a| RangeToAnchor { anchor: a, distance_m: a.distance_to(truth) })
///     .collect();
/// let fix = multilaterate(&ranges)?;
/// assert!(fix.position.distance_to(truth) < 1e-6);
/// # Ok::<(), concurrent_ranging::RangingError>(())
/// ```
pub fn multilaterate(ranges: &[RangeToAnchor]) -> Result<PositionFix, RangingError> {
    if ranges.len() < 3 {
        return Err(RangingError::InvalidSchemeParameters);
    }
    for r in ranges {
        if !(r.distance_m.is_finite() && r.anchor.x.is_finite() && r.anchor.y.is_finite()) {
            return Err(RangingError::InvalidSchemeParameters);
        }
    }

    let cost = |q: Point2| -> f64 {
        ranges
            .iter()
            .map(|r| {
                let d = q.distance_to(r.anchor);
                (d - r.distance_m).powi(2)
            })
            .sum()
    };

    // Multi-start: the LS cost has mirror local minima when the target
    // sits outside the anchor hull, so seed Gauss–Newton from the anchor
    // centroid AND from the two circle-intersection points of the
    // farthest-apart anchor pair, keeping the best converged solution.
    let centroid = Point2::new(
        ranges.iter().map(|r| r.anchor.x).sum::<f64>() / ranges.len() as f64,
        ranges.iter().map(|r| r.anchor.y).sum::<f64>() / ranges.len() as f64,
    );
    let mut seeds = vec![centroid];
    if let Some((a, b)) = farthest_pair(ranges) {
        seeds.extend(circle_intersections(a, b));
    }

    let mut best: Option<(Point2, f64, usize)> = None;
    for seed in seeds {
        let (p, c, iters) = gauss_newton(ranges, seed, &cost);
        if best.as_ref().is_none_or(|(_, bc, _)| c < *bc) {
            best = Some((p, c, iters));
        }
    }
    let (p, final_cost, iterations) = best.expect("at least one seed");
    let rms = (final_cost / ranges.len() as f64).sqrt();
    Ok(PositionFix {
        position: p,
        residual_rms_m: rms,
        iterations,
    })
}

/// The two ranges whose anchors are farthest apart.
fn farthest_pair(ranges: &[RangeToAnchor]) -> Option<(&RangeToAnchor, &RangeToAnchor)> {
    let mut best: Option<(&RangeToAnchor, &RangeToAnchor, f64)> = None;
    for (i, a) in ranges.iter().enumerate() {
        for b in &ranges[i + 1..] {
            let d = a.anchor.distance_to(b.anchor);
            if best.as_ref().is_none_or(|&(_, _, bd)| d > bd) {
                best = Some((a, b, d));
            }
        }
    }
    best.map(|(a, b, _)| (a, b))
}

/// Intersection points of two range circles (or their closest-approach
/// midpoint when the circles do not intersect).
fn circle_intersections(a: &RangeToAnchor, b: &RangeToAnchor) -> Vec<Point2> {
    let d = a.anchor.distance_to(b.anchor);
    if d < 1e-9 {
        return Vec::new();
    }
    let (r0, r1) = (a.distance_m, b.distance_m);
    let ex = (b.anchor.x - a.anchor.x) / d;
    let ey = (b.anchor.y - a.anchor.y) / d;
    // Distance from anchor a along the baseline to the chord.
    let x = ((r0 * r0 - r1 * r1 + d * d) / (2.0 * d)).clamp(-2.0 * d, 2.0 * d);
    let h_sq = r0 * r0 - x * x;
    let base = Point2::new(a.anchor.x + x * ex, a.anchor.y + x * ey);
    if h_sq <= 0.0 {
        return vec![base];
    }
    let h = h_sq.sqrt();
    vec![
        Point2::new(base.x - h * ey, base.y + h * ex),
        Point2::new(base.x + h * ey, base.y - h * ex),
    ]
}

/// Gauss–Newton with step-halving from a given start.
fn gauss_newton(
    ranges: &[RangeToAnchor],
    start: Point2,
    cost: &dyn Fn(Point2) -> f64,
) -> (Point2, f64, usize) {
    let mut p = start;
    let max_iters = 50;
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        // Gauss–Newton normal equations: JᵀJ·Δ = −Jᵀr with
        // residual_i = |p − a_i| − d_i and gradient rows (p − a_i)/|p − a_i|.
        let (mut jtj00, mut jtj01, mut jtj11) = (0.0, 0.0, 0.0);
        let (mut jtr0, mut jtr1) = (0.0, 0.0);
        for r in ranges {
            let dx = p.x - r.anchor.x;
            let dy = p.y - r.anchor.y;
            let dist = (dx * dx + dy * dy).sqrt().max(1e-9);
            let res = dist - r.distance_m;
            let (jx, jy) = (dx / dist, dy / dist);
            jtj00 += jx * jx;
            jtj01 += jx * jy;
            jtj11 += jy * jy;
            jtr0 += jx * res;
            jtr1 += jy * res;
        }
        let det = jtj00 * jtj11 - jtj01 * jtj01;
        if det.abs() < 1e-12 {
            break; // degenerate geometry (collinear anchors)
        }
        let step_x = -(jtj11 * jtr0 - jtj01 * jtr1) / det;
        let step_y = -(-jtj01 * jtr0 + jtj00 * jtr1) / det;

        // Step halving for robustness far from the solution.
        let current = cost(p);
        let mut scale = 1.0;
        let mut moved = false;
        for _ in 0..8 {
            let candidate = Point2::new(p.x + scale * step_x, p.y + scale * step_y);
            if cost(candidate) < current {
                p = candidate;
                moved = true;
                break;
            }
            scale *= 0.5;
        }
        if !moved || (step_x.hypot(step_y)) < 1e-10 {
            break;
        }
    }
    (p, cost(p), iterations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_ranges(truth: Point2, anchors: &[Point2]) -> Vec<RangeToAnchor> {
        anchors
            .iter()
            .map(|&a| RangeToAnchor {
                anchor: a,
                distance_m: a.distance_to(truth),
            })
            .collect()
    }

    #[test]
    fn exact_ranges_give_exact_position() {
        let truth = Point2::new(4.2, 6.7);
        let anchors = [
            Point2::new(0.0, 0.0),
            Point2::new(12.0, 0.0),
            Point2::new(12.0, 10.0),
            Point2::new(0.0, 10.0),
        ];
        let fix = multilaterate(&exact_ranges(truth, &anchors)).unwrap();
        assert!(fix.position.distance_to(truth) < 1e-6);
        assert!(fix.residual_rms_m < 1e-6);
    }

    #[test]
    fn noisy_ranges_give_small_error() {
        let truth = Point2::new(5.0, 3.0);
        let anchors = [
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(10.0, 8.0),
            Point2::new(0.0, 8.0),
        ];
        let noise = [0.02, -0.03, 0.01, -0.015];
        let ranges: Vec<RangeToAnchor> = anchors
            .iter()
            .zip(noise)
            .map(|(&a, n)| RangeToAnchor {
                anchor: a,
                distance_m: a.distance_to(truth) + n,
            })
            .collect();
        let fix = multilaterate(&ranges).unwrap();
        assert!(fix.position.distance_to(truth) < 0.05);
    }

    #[test]
    fn rejects_underdetermined_problems() {
        let anchors = [Point2::new(0.0, 0.0), Point2::new(5.0, 0.0)];
        let ranges = exact_ranges(Point2::new(1.0, 1.0), &anchors);
        assert!(matches!(
            multilaterate(&ranges),
            Err(RangingError::InvalidSchemeParameters)
        ));
    }

    #[test]
    fn rejects_non_finite_inputs() {
        let ranges = vec![
            RangeToAnchor {
                anchor: Point2::new(0.0, 0.0),
                distance_m: f64::NAN,
            },
            RangeToAnchor {
                anchor: Point2::new(1.0, 0.0),
                distance_m: 1.0,
            },
            RangeToAnchor {
                anchor: Point2::new(0.0, 1.0),
                distance_m: 1.0,
            },
        ];
        assert!(multilaterate(&ranges).is_err());
    }

    #[test]
    fn collinear_anchors_do_not_crash() {
        // Degenerate geometry: the solver stops gracefully.
        let anchors = [
            Point2::new(0.0, 0.0),
            Point2::new(5.0, 0.0),
            Point2::new(10.0, 0.0),
        ];
        let ranges = exact_ranges(Point2::new(3.0, 0.0), &anchors);
        let fix = multilaterate(&ranges).unwrap();
        assert!(fix.position.x.is_finite() && fix.position.y.is_finite());
    }

    #[test]
    fn far_initial_guess_converges() {
        let truth = Point2::new(1.0, 1.0);
        // Anchors clustered far from the centroid start.
        let anchors = [
            Point2::new(100.0, 100.0),
            Point2::new(110.0, 100.0),
            Point2::new(100.0, 110.0),
            Point2::new(90.0, 95.0),
        ];
        let fix = multilaterate(&exact_ranges(truth, &anchors)).unwrap();
        assert!(
            fix.position.distance_to(truth) < 0.01,
            "converged to {:?}",
            fix.position
        );
    }
}
