//! Distance estimation math: the paper's Eq. 2 (SS-TWR) and Eq. 4
//! (CIR-relative concurrent ranging), extended for response position
//! modulation.

use uwb_radio::{DeviceTime, DTU_SECONDS, SPEED_OF_LIGHT};

/// The four timestamps of a single-sided two-way ranging exchange.
///
/// All values are local device times of the respective node: the initiator's
/// transmit/receive pair and the responder's receive/transmit pair (embedded
/// in the RESP payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TwrTimestamps {
    /// Initiator's INIT transmit timestamp (`t_tx,init`).
    pub init_tx: DeviceTime,
    /// Initiator's RESP receive timestamp (`t_rx,init`).
    pub init_rx: DeviceTime,
    /// Responder's INIT receive timestamp (`t_rx,1`).
    pub resp_rx: DeviceTime,
    /// Responder's RESP transmit timestamp (`t_tx,1`).
    pub resp_tx: DeviceTime,
}

impl TwrTimestamps {
    /// The initiator-side round-trip duration in seconds.
    pub fn round_trip_s(&self) -> f64 {
        self.init_rx.wrapping_sub(self.init_tx) as f64 * DTU_SECONDS
    }

    /// The responder-side reply duration in seconds.
    pub fn reply_s(&self) -> f64 {
        self.resp_tx.wrapping_sub(self.resp_rx) as f64 * DTU_SECONDS
    }

    /// Single-sided two-way ranging distance (the paper's Eq. 2):
    ///
    /// `d_TWR = c · [(t_rx,init − t_tx,init) − (t_tx,1 − t_rx,1)] / 2`
    ///
    /// Device-time wrap-around is handled by modular subtraction.
    pub fn distance_m(&self) -> f64 {
        (self.round_trip_s() - self.reply_s()) / 2.0 * SPEED_OF_LIGHT
    }

    /// Time of flight implied by the exchange, in seconds.
    pub fn time_of_flight_s(&self) -> f64 {
        (self.round_trip_s() - self.reply_s()) / 2.0
    }

    /// SS-TWR distance with carrier-frequency-offset correction: the
    /// responder's clock runs `(1 + δ)` relative to the initiator's, so
    /// its reported reply interval is rescaled before Eq. 2 — removing
    /// the `c·δ·Δ_RESP/2` drift bias using the CFO the DW1000 measures
    /// during reception (`δ` = `responder_cfo_ppm` × 10⁻⁶).
    pub fn distance_cfo_corrected_m(&self, responder_cfo_ppm: f64) -> f64 {
        let reply_true = self.reply_s() / (1.0 + responder_cfo_ppm * 1e-6);
        (self.round_trip_s() - reply_true) / 2.0 * SPEED_OF_LIGHT
    }
}

/// Concurrent-ranging distance from CIR path delays (the paper's Eq. 4):
///
/// `d_i = d_TWR + c · (τ_i − τ_1) / 2`
///
/// where `τ_1` is the path delay of the responder whose payload was decoded
/// (anchoring the CIR to `d_TWR`) and `τ_i` the delay of responder `i`. The
/// halving accounts for the extra delay affecting both the INIT and RESP
/// directions.
pub fn concurrent_distance_m(d_twr_m: f64, tau_i_s: f64, tau_1_s: f64) -> f64 {
    d_twr_m + SPEED_OF_LIGHT * (tau_i_s - tau_1_s) / 2.0
}

/// Eq. 4 extended for response position modulation (Sect. VII/VIII): the
/// intentional slot delay `(slot_i − slot_1) · δ` is removed before the
/// delay difference is converted to distance. With both responders in the
/// same slot this reduces to [`concurrent_distance_m`].
pub fn concurrent_distance_with_rpm_m(
    d_twr_m: f64,
    tau_i_s: f64,
    tau_1_s: f64,
    slot_i: usize,
    slot_1: usize,
    slot_spacing_s: f64,
) -> f64 {
    let slot_delta = (slot_i as f64 - slot_1 as f64) * slot_spacing_s;
    d_twr_m + SPEED_OF_LIGHT * ((tau_i_s - tau_1_s) - slot_delta) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_radio::meters_to_seconds;

    fn dt(seconds: f64) -> DeviceTime {
        DeviceTime::from_seconds(seconds).unwrap()
    }

    #[test]
    fn ideal_exchange_recovers_distance() {
        // 10 m of one-way flight, 290 µs reply delay.
        let tof = meters_to_seconds(10.0);
        let ts = TwrTimestamps {
            init_tx: dt(1.0),
            resp_rx: dt(2.0), // responder clock offset is irrelevant
            resp_tx: dt(2.0 + 290e-6),
            init_rx: dt(1.0 + tof + 290e-6 + tof),
        };
        assert!((ts.distance_m() - 10.0).abs() < 0.005);
        assert!((ts.time_of_flight_s() - tof).abs() < 2.0 * DTU_SECONDS);
    }

    #[test]
    fn clock_offset_cancels() {
        let tof = meters_to_seconds(25.0);
        // Responder timestamps shifted by an arbitrary 5 s offset.
        let ts = TwrTimestamps {
            init_tx: dt(1.0),
            resp_rx: dt(7.0),
            resp_tx: dt(7.0 + 290e-6),
            init_rx: dt(1.0 + 2.0 * tof + 290e-6),
        };
        assert!((ts.distance_m() - 25.0).abs() < 0.005);
    }

    #[test]
    fn cfo_correction_removes_drift_bias() {
        // Responder 20 ppm fast: its reply reads 290 µs on its clock but
        // truly lasted 290 µs/(1+20e-6).
        let tof = meters_to_seconds(10.0);
        let rate = 1.0 + 20e-6;
        let reply_local = 290e-6;
        let reply_true = reply_local / rate;
        let ts = TwrTimestamps {
            init_tx: dt(1.0),
            resp_rx: dt(3.0),
            resp_tx: dt(3.0 + reply_local),
            init_rx: dt(1.0 + 2.0 * tof + reply_true),
        };
        // Uncorrected Eq. 2 is biased by ≈ −0.87 m…
        assert!((ts.distance_m() - 10.0).abs() > 0.5);
        // …the CFO-corrected estimate is centimetric.
        let corrected = ts.distance_cfo_corrected_m(20.0);
        assert!((corrected - 10.0).abs() < 0.02, "corrected {corrected}");
        // Zero CFO reduces to Eq. 2.
        assert!((ts.distance_cfo_corrected_m(0.0) - ts.distance_m()).abs() < 1e-9);
    }

    #[test]
    fn wrapping_timestamps_still_work() {
        // Exchange straddles the 17.2 s counter wrap.
        let period = uwb_radio::TIMESTAMP_MODULUS as f64 * DTU_SECONDS;
        let tof = meters_to_seconds(5.0);
        let start = period - 100e-6; // 100 µs before the wrap
        let ts = TwrTimestamps {
            init_tx: dt(start),
            resp_rx: dt(3.0),
            resp_tx: dt(3.0 + 290e-6),
            init_rx: dt((start + 2.0 * tof + 290e-6) % period),
        };
        assert!((ts.distance_m() - 5.0).abs() < 0.01);
    }

    #[test]
    fn eq4_matches_paper_example() {
        // Paper Sect. III: d_TWR = 3 m; responders at 6 m and 10 m arrive
        // with Δτ = 2(τ_i − τ_1).
        let d_twr = 3.0;
        let tau1 = 0.0;
        let tau2 = 2.0 * meters_to_seconds(6.0 - 3.0);
        let tau3 = 2.0 * meters_to_seconds(10.0 - 3.0);
        assert!((concurrent_distance_m(d_twr, tau2, tau1) - 6.0).abs() < 1e-9);
        assert!((concurrent_distance_m(d_twr, tau3, tau1) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn eq4_is_exact_for_anchor() {
        assert_eq!(concurrent_distance_m(7.5, 0.4e-6, 0.4e-6), 7.5);
    }

    #[test]
    fn rpm_compensation_removes_slot_delay() {
        let d_twr = 4.0;
        let delta = 250e-9; // slot spacing
                            // Responder in slot 2 (anchor in slot 0) at the same distance:
                            // observed delay difference is exactly 2δ.
        let tau_i = 2.0 * delta;
        let d = concurrent_distance_with_rpm_m(d_twr, tau_i, 0.0, 2, 0, delta);
        assert!((d - 4.0).abs() < 1e-9);
        // Without compensation the estimate would be wildly off.
        let wrong = concurrent_distance_m(d_twr, tau_i, 0.0);
        assert!((wrong - 4.0).abs() > 70.0);
    }

    #[test]
    fn rpm_with_equal_slots_reduces_to_eq4() {
        let d = concurrent_distance_with_rpm_m(3.0, 50e-9, 10e-9, 1, 1, 250e-9);
        assert_eq!(d, concurrent_distance_m(3.0, 50e-9, 10e-9));
    }

    #[test]
    fn anchor_slot_later_than_response_slot() {
        let delta = 250e-9;
        // Response in slot 0, anchor in slot 1: observed τ_i − τ_1 = −δ for
        // equal distances.
        let d = concurrent_distance_with_rpm_m(6.0, 0.0, delta, 0, 1, delta);
        assert!((d - 6.0).abs() < 1e-9);
    }
}
