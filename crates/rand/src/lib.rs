//! Offline stand-in for the [`rand`](https://docs.rs/rand/0.9) API subset
//! used by this workspace.
//!
//! The build environment has no network access and no pre-populated crate
//! registry, so crates.io dependencies can never resolve. This crate
//! provides the pieces of `rand` 0.9 the workspace actually uses — the
//! [`Rng`] / [`RngCore`] / [`SeedableRng`] traits and a deterministic
//! [`rngs::StdRng`] — as a local path dependency with no external deps.
//!
//! `StdRng` here is xoshiro256++ (Blackman & Vigna) seeded through
//! SplitMix64, *not* the ChaCha12 generator real `rand` uses, so seeded
//! streams differ from upstream. That is fine for this workspace: all
//! tests assert statistical properties (means, variances, success-rate
//! bands), never exact draws, and reproducibility only requires that a
//! given seed yields the same stream on every run and platform — which
//! xoshiro256++ guarantees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level generator interface: a source of uniformly random `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from an RNG, mirroring `rand`'s
/// `StandardUniform` distribution for the primitives this workspace uses.
pub trait UniformSample {
    /// Draws one uniformly distributed value.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the same
    /// construction upstream `rand` uses).
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl UniformSample for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T` (for `f64`:
    /// uniform in `[0, 1)`).
    fn random<T: UniformSample>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Draws a uniformly distributed value in `[low, high)`.
    fn random_range(&mut self, range: std::ops::Range<f64>) -> f64 {
        range.start + (range.end - range.start) * self.random::<f64>()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Constructs the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` seed (the only entry point
    /// this workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// The `splitmix64` mixer (Steele, Lea & Flood): expands a 64-bit seed
/// into a stream of well-mixed 64-bit values; used for seeding.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A deterministic, portable, statistically strong PRNG:
    /// xoshiro256++ 1.0 (Blackman & Vigna, 2019), seeded via SplitMix64.
    ///
    /// Not the same algorithm as upstream `rand`'s `StdRng` (ChaCha12) —
    /// see the crate docs for why that is acceptable here. Not
    /// cryptographically secure; simulation use only.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; re-derive.
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// `rand::prelude` equivalent.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_unit_interval_uniform() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn adjacent_seeds_are_decorrelated() {
        // SplitMix64 seeding must break the correlation between seeds k
        // and k+1 — this is what per-trial seed derivation relies on.
        let mut acc = 0.0f64;
        let n = 1000;
        for seed in 0..n {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed + 1);
            let x: f64 = a.random();
            let y: f64 = b.random();
            acc += (x - 0.5) * (y - 0.5);
        }
        let cov = acc / n as f64;
        assert!(cov.abs() < 0.01, "covariance {cov}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn from_seed_zero_is_not_degenerate() {
        let mut r = StdRng::from_seed([0u8; 32]);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = r.random_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }
}
