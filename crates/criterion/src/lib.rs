//! Offline stand-in for the [`criterion`](https://docs.rs/criterion/0.5)
//! API subset used by this workspace's benches.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot resolve. This crate keeps every bench compiling and produces
//! honest wall-clock numbers: each benchmark is warmed up, then timed in
//! adaptively sized batches until a measurement budget is spent, and the
//! per-iteration mean/median/min are printed in a criterion-like line.
//! There is no statistical regression analysis, HTML report, or
//! command-line filtering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Formats a per-iteration duration in criterion's adaptive units.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    /// Per-sample mean nanoseconds per iteration, filled by `iter`.
    samples_ns: Vec<f64>,
    sample_count: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent, measuring the
        // rough cost of one iteration as we go.
        let warm_start = Instant::now();
        let mut iters_done: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || iters_done == 0 {
            black_box(f());
            iters_done += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;

        // Size batches so all samples together fit the measurement budget.
        let budget = self.measurement_time.as_secs_f64();
        let total_iters = (budget / per_iter.max(1e-9)).ceil() as u64;
        let batch = (total_iters / self.sample_count as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples_ns.push(elapsed * 1e9 / batch as f64);
        }
    }
}

/// One benchmark's aggregated timing, printed criterion-style.
fn report(name: &str, samples_ns: &[f64]) {
    let mut sorted = samples_ns.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let min = sorted.first().copied().unwrap_or(0.0);
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let mut line = String::new();
    let _ = write!(
        line,
        "{name:<40} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean)
    );
    println!("{line}");
}

/// Identifies one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, f);
        self
    }

    /// Benchmarks `f` with an input value under `id` within this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream criterion finalises reports here).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            // Much smaller than upstream's 3 s / 5 s defaults: these
            // benches run in CI without statistical machinery, so a short
            // budget keeps the suite fast while min/median stay stable.
            measurement_time: Duration::from_millis(300),
            warm_up_time: Duration::from_millis(60),
        }
    }
}

impl Criterion {
    /// Upstream parses CLI flags here; this stand-in accepts and ignores
    /// them so `cargo bench -- <filter>` invocations do not error.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        self.run_one(name, sample_size, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, sample_size: usize, mut f: F) {
        let mut bencher = Bencher {
            samples_ns: Vec::with_capacity(sample_size),
            sample_count: sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        f(&mut bencher);
        if bencher.samples_ns.is_empty() {
            println!("{name:<40} (no measurements — Bencher::iter never called)");
        } else {
            report(name, &bencher.samples_ns);
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench-harness `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut calls = 0u64;
        fast_criterion().bench_function("counting", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_bench_with_input_passes_input() {
        let mut c = fast_criterion();
        let mut group = c.benchmark_group("grp");
        group.sample_size(3);
        let mut seen = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter(|| seen = n);
        });
        group.finish();
        assert_eq!(seen, 7);
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_ns(12.345), "12.35 ns");
        assert_eq!(fmt_ns(12_345.0), "12.35 µs");
        assert_eq!(fmt_ns(12_345_678.0), "12.35 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }
}
