//! Linear convolution and cross-correlation.
//!
//! Both direct `O(N·M)` and FFT-based `O(N log N)` implementations are
//! provided; [`convolve`] picks the faster one heuristically. The matched
//! filter in [`crate::matched_filter`] is built on these primitives.

use crate::complex::Complex64;
use crate::error::DspError;
use crate::fft::{next_power_of_two, FftPlan};

/// Size product above which the FFT-based convolution wins over the direct
/// method (empirically calibrated; exact placement is not critical).
const FFT_CROSSOVER: usize = 1 << 14;

/// Full linear convolution of two complex sequences.
///
/// The result has length `a.len() + b.len() - 1`. Chooses between the direct
/// and FFT implementation based on input sizes.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when either input is empty.
///
/// # Examples
///
/// ```
/// use uwb_dsp::{convolve, Complex64};
/// # fn main() -> Result<(), uwb_dsp::DspError> {
/// let a = [Complex64::from_real(1.0), Complex64::from_real(2.0)];
/// let b = [Complex64::from_real(3.0), Complex64::from_real(4.0)];
/// let c = convolve(&a, &b)?;
/// assert_eq!(c.len(), 3);
/// assert!((c[1].re - 10.0).abs() < 1e-12); // 1·4 + 2·3
/// # Ok(())
/// # }
/// ```
pub fn convolve(a: &[Complex64], b: &[Complex64]) -> Result<Vec<Complex64>, DspError> {
    if a.is_empty() || b.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if a.len() * b.len() <= FFT_CROSSOVER {
        Ok(convolve_direct(a, b))
    } else {
        convolve_fft(a, b)
    }
}

/// Direct-form linear convolution, `O(N·M)`.
pub fn convolve_direct(a: &[Complex64], b: &[Complex64]) -> Vec<Complex64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![Complex64::ZERO; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// FFT-based linear convolution, `O(N log N)`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when either input is empty.
pub fn convolve_fft(a: &[Complex64], b: &[Complex64]) -> Result<Vec<Complex64>, DspError> {
    if a.is_empty() || b.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let out_len = a.len() + b.len() - 1;
    let n = next_power_of_two(out_len);
    let plan = FftPlan::new(n)?;

    let mut fa = vec![Complex64::ZERO; n];
    fa[..a.len()].copy_from_slice(a);
    let mut fb = vec![Complex64::ZERO; n];
    fb[..b.len()].copy_from_slice(b);

    plan.forward(&mut fa);
    plan.forward(&mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    plan.inverse(&mut fa);
    fa.truncate(out_len);
    Ok(fa)
}

/// Full linear cross-correlation `(a ⋆ b)[k] = Σ_n a[n+k]·conj(b[n])`.
///
/// Returned with the same `a.len() + b.len() - 1` support as [`convolve`],
/// where index `b.len() - 1` corresponds to zero lag.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when either input is empty.
pub fn correlate(a: &[Complex64], b: &[Complex64]) -> Result<Vec<Complex64>, DspError> {
    let reversed_conj: Vec<Complex64> = b.iter().rev().map(|z| z.conj()).collect();
    convolve(a, &reversed_conj)
}

/// Index into a [`correlate`] output that corresponds to zero lag.
pub fn zero_lag_index(b_len: usize) -> usize {
    b_len.saturating_sub(1)
}

/// Convolution of real-valued sequences, returned as real values.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when either input is empty.
pub fn convolve_real(a: &[f64], b: &[f64]) -> Result<Vec<f64>, DspError> {
    let ca: Vec<Complex64> = a.iter().map(|&x| Complex64::from_real(x)).collect();
    let cb: Vec<Complex64> = b.iter().map(|&x| Complex64::from_real(x)).collect();
    Ok(convolve(&ca, &cb)?.into_iter().map(|z| z.re).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(values: &[f64]) -> Vec<Complex64> {
        values.iter().map(|&x| Complex64::from_real(x)).collect()
    }

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn empty_inputs_are_rejected() {
        assert!(matches!(
            convolve(&[], &c(&[1.0])),
            Err(DspError::EmptyInput)
        ));
        assert!(matches!(
            convolve(&c(&[1.0]), &[]),
            Err(DspError::EmptyInput)
        ));
    }

    #[test]
    fn known_small_convolution() {
        let out = convolve(&c(&[1.0, 2.0, 3.0]), &c(&[0.0, 1.0, 0.5])).unwrap();
        let expected = c(&[0.0, 1.0, 2.5, 4.0, 1.5]);
        assert_close(&out, &expected, 1e-12);
    }

    #[test]
    fn identity_kernel_preserves_signal() {
        let signal = c(&[1.0, -2.0, 3.5, 0.25]);
        let out = convolve(&signal, &c(&[1.0])).unwrap();
        assert_close(&out, &signal, 1e-12);
    }

    #[test]
    fn direct_and_fft_agree() {
        let a: Vec<Complex64> = (0..200)
            .map(|i| Complex64::new((i as f64 * 0.3).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let b: Vec<Complex64> = (0..150)
            .map(|i| Complex64::new((i as f64 * 0.7).cos(), -(i as f64 * 0.05)))
            .collect();
        let direct = convolve_direct(&a, &b);
        let fft = convolve_fft(&a, &b).unwrap();
        assert_close(&direct, &fft, 1e-6);
    }

    #[test]
    fn convolution_is_commutative() {
        let a = c(&[1.0, 2.0, -1.0]);
        let b = c(&[0.5, 0.0, 3.0, 1.0]);
        let ab = convolve(&a, &b).unwrap();
        let ba = convolve(&b, &a).unwrap();
        assert_close(&ab, &ba, 1e-12);
    }

    #[test]
    fn correlation_peaks_at_matching_lag() {
        // A template embedded in a longer signal should produce a correlation
        // maximum at the embedding offset.
        let template = c(&[1.0, 2.0, 3.0, 2.0, 1.0]);
        let mut signal = vec![Complex64::ZERO; 32];
        let offset = 11;
        for (i, &t) in template.iter().enumerate() {
            signal[offset + i] = t;
        }
        let corr = correlate(&signal, &template).unwrap();
        let (max_idx, _) = corr
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();
        // Peak lands at zero_lag + offset.
        assert_eq!(max_idx, zero_lag_index(template.len()) + offset);
    }

    #[test]
    fn correlation_of_complex_uses_conjugate() {
        let a = vec![Complex64::I];
        let corr = correlate(&a, &a).unwrap();
        // i · conj(i) = 1
        assert!((corr[0] - Complex64::ONE).abs() < 1e-12);
    }

    #[test]
    fn real_convolution_wrapper() {
        let out = convolve_real(&[1.0, 1.0], &[1.0, 1.0]).unwrap();
        assert_eq!(out.len(), 3);
        assert!((out[1] - 2.0).abs() < 1e-12);
    }
}
