//! Linear convolution and cross-correlation.
//!
//! Both direct `O(N·M)` and FFT-based `O(N log N)` implementations are
//! provided; [`convolve`] picks the faster one heuristically. The matched
//! filter in [`crate::matched_filter`] is built on these primitives.

use crate::complex::Complex64;
use crate::error::DspError;
use crate::fft::{next_power_of_two, FftPlan};
use crate::plan::DspContext;

/// Direct-vs-FFT cost ratio: the FFT path costs roughly
/// `FFT_COST_RATIO · K·log₂K` point-products' worth of time, where
/// `K = next_power_of_two(N+M-1)` is the transform length, while the
/// direct path costs `N·M` point-products. Measured with
/// `examples/crossover_probe.rs` (release build, the repo's reference
/// container): direct runs at ≈1.0 ns per point-product and the
/// allocating FFT path at ≈4.0–4.7 ns per `K·log₂K` unit; a ratio of 4
/// predicts the faster side for every probed `(N, M)` pair, including
/// the asymmetric detector shapes (1016×64 direct, 1016×96 FFT,
/// 8128×96 direct, 8128×803 FFT) that the old flat `N·M > 2¹⁴` product
/// threshold classified wrongly — it sent e.g. 1016×32 (33 µs direct,
/// 89 µs FFT) down the FFT path. Exact placement near the boundary is
/// not critical: both sides agree to ~1e-9 there (see tests).
const FFT_COST_RATIO: usize = 4;

/// `true` when the FFT path is predicted faster than the direct path
/// for a convolution of an `a_len`-sample signal with a `b_len`-sample
/// kernel. Shared by the allocating and planned entry points — and by
/// the backend kernels in [`crate::Kernels`] — so every path always
/// takes the same branch (bit-identical outputs).
pub(crate) fn fft_wins(a_len: usize, b_len: usize) -> bool {
    let conv_len = next_power_of_two(a_len + b_len - 1);
    // log₂K of the power-of-two transform length, clamped to ≥1 so the
    // degenerate K=1 case stays on the direct path.
    let log2 = (conv_len.trailing_zeros() as usize).max(1);
    a_len * b_len > FFT_COST_RATIO * conv_len * log2
}

/// Full linear convolution of two complex sequences.
///
/// The result has length `a.len() + b.len() - 1`. Chooses between the direct
/// and FFT implementation based on input sizes.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when either input is empty.
///
/// # Examples
///
/// ```
/// use uwb_dsp::{convolve, Complex64};
/// # fn main() -> Result<(), uwb_dsp::DspError> {
/// let a = [Complex64::from_real(1.0), Complex64::from_real(2.0)];
/// let b = [Complex64::from_real(3.0), Complex64::from_real(4.0)];
/// let c = convolve(&a, &b)?;
/// assert_eq!(c.len(), 3);
/// assert!((c[1].re - 10.0).abs() < 1e-12); // 1·4 + 2·3
/// # Ok(())
/// # }
/// ```
pub fn convolve(a: &[Complex64], b: &[Complex64]) -> Result<Vec<Complex64>, DspError> {
    if a.is_empty() || b.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if fft_wins(a.len(), b.len()) {
        convolve_fft(a, b)
    } else {
        Ok(convolve_direct(a, b))
    }
}

/// [`convolve`] into a caller-owned output buffer, with plans and
/// working memory drawn from `ctx` — the planned hot-path entry point.
/// Steady state (warm plan cache and scratch arena) allocates nothing.
///
/// `out` is cleared and filled with the `a.len() + b.len() - 1` result;
/// its capacity is reused across calls. Output is bit-identical to
/// [`convolve`] for the same inputs (same branch choice, same operation
/// order).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when either input is empty.
pub fn convolve_into(
    a: &[Complex64],
    b: &[Complex64],
    out: &mut Vec<Complex64>,
    ctx: &mut DspContext,
) -> Result<(), DspError> {
    if a.is_empty() || b.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let out_len = a.len() + b.len() - 1;
    if !fft_wins(a.len(), b.len()) {
        uwb_obs::profile::work("conv.mac", a.len() as u64 * b.len() as u64);
        out.clear();
        out.resize(out_len, Complex64::ZERO);
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                out[i + j] += x * y;
            }
        }
        return Ok(());
    }
    let n = next_power_of_two(out_len);
    // Pointwise spectrum product; the three planned transforms below
    // count their own butterflies.
    uwb_obs::profile::work("conv.mac", n as u64);
    let plan = ctx.plans.radix2(n)?;
    let mut fa = ctx.scratch.acquire_zeroed(n);
    fa[..a.len()].copy_from_slice(a);
    let mut fb = ctx.scratch.acquire_zeroed(n);
    fb[..b.len()].copy_from_slice(b);

    plan.forward(&mut fa);
    plan.forward(&mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    plan.inverse(&mut fa);
    out.clear();
    out.extend_from_slice(&fa[..out_len]);
    ctx.scratch.release(fa);
    ctx.scratch.release(fb);
    Ok(())
}

/// Direct-form linear convolution, `O(N·M)`.
pub fn convolve_direct(a: &[Complex64], b: &[Complex64]) -> Vec<Complex64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    uwb_obs::profile::work("conv.mac", a.len() as u64 * b.len() as u64);
    let mut out = vec![Complex64::ZERO; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// FFT-based linear convolution, `O(N log N)`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when either input is empty.
pub fn convolve_fft(a: &[Complex64], b: &[Complex64]) -> Result<Vec<Complex64>, DspError> {
    if a.is_empty() || b.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let out_len = a.len() + b.len() - 1;
    let n = next_power_of_two(out_len);
    uwb_obs::profile::work("conv.mac", n as u64);
    let plan = FftPlan::new(n)?;

    let mut fa = vec![Complex64::ZERO; n];
    fa[..a.len()].copy_from_slice(a);
    let mut fb = vec![Complex64::ZERO; n];
    fb[..b.len()].copy_from_slice(b);

    plan.forward(&mut fa);
    plan.forward(&mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    plan.inverse(&mut fa);
    fa.truncate(out_len);
    Ok(fa)
}

/// Full linear cross-correlation `(a ⋆ b)[k] = Σ_n a[n+k]·conj(b[n])`.
///
/// Returned with the same `a.len() + b.len() - 1` support as [`convolve`],
/// where index `b.len() - 1` corresponds to zero lag.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when either input is empty.
pub fn correlate(a: &[Complex64], b: &[Complex64]) -> Result<Vec<Complex64>, DspError> {
    let reversed_conj: Vec<Complex64> = b.iter().rev().map(|z| z.conj()).collect();
    convolve(a, &reversed_conj)
}

/// [`correlate`] into a caller-owned output buffer, with plans and
/// working memory drawn from `ctx`. Bit-identical to [`correlate`].
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when either input is empty.
pub fn correlate_into(
    a: &[Complex64],
    b: &[Complex64],
    out: &mut Vec<Complex64>,
    ctx: &mut DspContext,
) -> Result<(), DspError> {
    if b.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let mut reversed_conj = ctx.scratch.acquire();
    reversed_conj.extend(b.iter().rev().map(|z| z.conj()));
    let result = convolve_into(a, &reversed_conj, out, ctx);
    ctx.scratch.release(reversed_conj);
    result
}

/// Index into a [`correlate`] output that corresponds to zero lag.
pub fn zero_lag_index(b_len: usize) -> usize {
    b_len.saturating_sub(1)
}

/// Convolution of real-valued sequences, returned as real values.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when either input is empty.
pub fn convolve_real(a: &[f64], b: &[f64]) -> Result<Vec<f64>, DspError> {
    let ca: Vec<Complex64> = a.iter().map(|&x| Complex64::from_real(x)).collect();
    let cb: Vec<Complex64> = b.iter().map(|&x| Complex64::from_real(x)).collect();
    Ok(convolve(&ca, &cb)?.into_iter().map(|z| z.re).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(values: &[f64]) -> Vec<Complex64> {
        values.iter().map(|&x| Complex64::from_real(x)).collect()
    }

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn empty_inputs_are_rejected() {
        assert!(matches!(
            convolve(&[], &c(&[1.0])),
            Err(DspError::EmptyInput)
        ));
        assert!(matches!(
            convolve(&c(&[1.0]), &[]),
            Err(DspError::EmptyInput)
        ));
    }

    #[test]
    fn known_small_convolution() {
        let out = convolve(&c(&[1.0, 2.0, 3.0]), &c(&[0.0, 1.0, 0.5])).unwrap();
        let expected = c(&[0.0, 1.0, 2.5, 4.0, 1.5]);
        assert_close(&out, &expected, 1e-12);
    }

    #[test]
    fn identity_kernel_preserves_signal() {
        let signal = c(&[1.0, -2.0, 3.5, 0.25]);
        let out = convolve(&signal, &c(&[1.0])).unwrap();
        assert_close(&out, &signal, 1e-12);
    }

    #[test]
    fn direct_and_fft_agree() {
        let a: Vec<Complex64> = (0..200)
            .map(|i| Complex64::new((i as f64 * 0.3).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let b: Vec<Complex64> = (0..150)
            .map(|i| Complex64::new((i as f64 * 0.7).cos(), -(i as f64 * 0.05)))
            .collect();
        let direct = convolve_direct(&a, &b);
        let fft = convolve_fft(&a, &b).unwrap();
        assert_close(&direct, &fft, 1e-6);
    }

    #[test]
    fn convolution_is_commutative() {
        let a = c(&[1.0, 2.0, -1.0]);
        let b = c(&[0.5, 0.0, 3.0, 1.0]);
        let ab = convolve(&a, &b).unwrap();
        let ba = convolve(&b, &a).unwrap();
        assert_close(&ab, &ba, 1e-12);
    }

    #[test]
    fn correlation_peaks_at_matching_lag() {
        // A template embedded in a longer signal should produce a correlation
        // maximum at the embedding offset.
        let template = c(&[1.0, 2.0, 3.0, 2.0, 1.0]);
        let mut signal = vec![Complex64::ZERO; 32];
        let offset = 11;
        for (i, &t) in template.iter().enumerate() {
            signal[offset + i] = t;
        }
        let corr = correlate(&signal, &template).unwrap();
        let (max_idx, _) = corr
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();
        // Peak lands at zero_lag + offset.
        assert_eq!(max_idx, zero_lag_index(template.len()) + offset);
    }

    #[test]
    fn correlation_of_complex_uses_conjugate() {
        let a = vec![Complex64::I];
        let corr = correlate(&a, &a).unwrap();
        // i · conj(i) = 1
        assert!((corr[0] - Complex64::ONE).abs() < 1e-12);
    }

    #[test]
    fn real_convolution_wrapper() {
        let out = convolve_real(&[1.0, 1.0], &[1.0, 1.0]).unwrap();
        assert_eq!(out.len(), 3);
        assert!((out[1] - 2.0).abs() < 1e-12);
    }

    fn wave(len: usize, f1: f64, f2: f64) -> Vec<Complex64> {
        (0..len)
            .map(|i| Complex64::new((i as f64 * f1).sin(), (i as f64 * f2).cos()))
            .collect()
    }

    #[test]
    fn crossover_heuristic_prefers_direct_for_skewed_shapes() {
        // The measured table behind FFT_COST_RATIO: a long signal with a
        // short kernel stays direct (the flat product threshold got
        // these wrong), while squarer shapes of the same product go FFT.
        assert!(
            !fft_wins(1016, 64),
            "1016x64 measured 67us direct / 89us fft"
        );
        assert!(
            !fft_wins(8128, 96),
            "8128x96 measured 0.8ms direct / 1.2ms fft"
        );
        assert!(
            fft_wins(1016, 128),
            "1016x128 measured 135us direct / 89us fft"
        );
        assert!(
            fft_wins(8128, 803),
            "8128x803 measured 7.0ms direct / 1.2ms fft"
        );
        assert!(fft_wins(128, 128), "128x128 measured 17us direct / 9us fft");
        assert!(!fft_wins(1, 1), "trivial sizes stay direct");
    }

    #[test]
    fn both_paths_agree_around_the_crossover() {
        // Satellite requirement: straddle the crossover for a fixed
        // kernel length and check direct and FFT agree to 1e-9. For a
        // 96-sample kernel the heuristic flips between a_len 893
        // (direct: 893+96-1 = 988 → K=1024, 4·1024·10 = 40960 < 85728?
        // — exercised empirically below) and nearby FFT lengths.
        let kernel = wave(96, 0.7, 0.05);
        let mut flips = 0;
        let mut last = None;
        for a_len in [256usize, 320, 400, 426, 427, 450, 512, 800, 1016] {
            let a = wave(a_len, 0.3, 0.11);
            let direct = convolve_direct(&a, &kernel);
            let fft = convolve_fft(&a, &kernel).unwrap();
            for (i, (x, y)) in direct.iter().zip(&fft).enumerate() {
                assert!(
                    (*x - *y).abs() < 1e-9,
                    "a_len={a_len} i={i}: direct {x} vs fft {y}"
                );
            }
            let side = fft_wins(a_len, kernel.len());
            if last.is_some_and(|prev| prev != side) {
                flips += 1;
            }
            last = Some(side);
        }
        assert!(flips >= 1, "the probed lengths must straddle the crossover");
    }

    #[test]
    fn convolve_into_matches_allocating_path_bitwise() {
        let mut ctx = crate::plan::DspContext::new();
        let mut out = Vec::new();
        // Both branches: small (direct) and large (FFT) shapes.
        for (n, m) in [(3usize, 5usize), (40, 17), (300, 120), (1016, 803)] {
            let a = wave(n, 0.3, 0.11);
            let b = wave(m, 0.7, 0.05);
            convolve_into(&a, &b, &mut out, &mut ctx).unwrap();
            let reference = convolve(&a, &b).unwrap();
            assert_eq!(out, reference, "n={n} m={m}");
            // Second call through the warm context: still identical.
            convolve_into(&a, &b, &mut out, &mut ctx).unwrap();
            assert_eq!(out, reference, "warm n={n} m={m}");
        }
        assert!(!ctx.plans.is_empty(), "FFT shapes must populate the cache");
    }

    #[test]
    fn correlate_into_matches_allocating_path_bitwise() {
        let mut ctx = crate::plan::DspContext::new();
        let mut out = Vec::new();
        for (n, m) in [(8usize, 3usize), (500, 120)] {
            let a = wave(n, 0.21, 0.34);
            let b = wave(m, 0.5, 0.09);
            correlate_into(&a, &b, &mut out, &mut ctx).unwrap();
            assert_eq!(out, correlate(&a, &b).unwrap(), "n={n} m={m}");
        }
    }

    #[test]
    fn into_paths_reject_empty_inputs() {
        let mut ctx = crate::plan::DspContext::new();
        let mut out = Vec::new();
        assert!(matches!(
            convolve_into(&[], &c(&[1.0]), &mut out, &mut ctx),
            Err(DspError::EmptyInput)
        ));
        assert!(matches!(
            correlate_into(&c(&[1.0]), &[], &mut out, &mut ctx),
            Err(DspError::EmptyInput)
        ));
    }
}
