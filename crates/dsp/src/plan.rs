//! Plan-once/execute-many DSP engine: cached FFT plans and a scratch
//! arena of reusable complex buffers.
//!
//! Every hot caller in the detection pipeline — FFT upsampling, the
//! matched-filter bank, search-and-subtract — runs the same transform
//! sizes thousands of times per campaign (the DW1000 CIR is always
//! 1016 taps, upsampled to 8128). The allocating entry points rebuild
//! twiddles, Bluestein chirps and working buffers on every call; a
//! [`DspContext`] amortizes all of that: plans are built once per size
//! and held in a [`PlanCache`], working memory is recycled through a
//! [`DspScratch`] arena, and the `*_into` entry points
//! ([`crate::convolve_into`], [`crate::correlate_into`],
//! [`crate::upsample_fft_into`], [`crate::MatchedFilter::apply_into`])
//! write into caller-owned output buffers.
//!
//! The planned paths execute the exact same floating-point operations in
//! the exact same order as their allocating counterparts, so outputs are
//! **bit-identical** — the property the campaign determinism contract
//! relies on, asserted by the property tests in `tests/properties.rs`.
//!
//! Plans are shared via [`std::sync::Arc`], so a context is cheap to
//! move into a worker thread and cache hits allocate nothing.
//!
//! # Examples
//!
//! ```
//! use uwb_dsp::{convolve, convolve_into, Complex64, DspContext};
//!
//! # fn main() -> Result<(), uwb_dsp::DspError> {
//! let a: Vec<Complex64> = (0..300).map(|i| Complex64::from_real(i as f64)).collect();
//! let b: Vec<Complex64> = (0..120).map(|i| Complex64::from_real(0.5 * i as f64)).collect();
//! let mut ctx = DspContext::new();
//! let mut out = Vec::new();
//! convolve_into(&a, &b, &mut out, &mut ctx)?; // plans built, buffers pooled
//! convolve_into(&a, &b, &mut out, &mut ctx)?; // steady state: zero allocations
//! assert_eq!(out, convolve(&a, &b)?);
//! # Ok(())
//! # }
//! ```

use crate::backend::DspBackend;
use crate::bluestein::BluesteinPlan;
use crate::complex::Complex64;
use crate::error::DspError;
use crate::fft::FftPlan;
use crate::fp32::{Complex32, Fp32Engine};
use crate::real_fft::RealFftPlan;
use std::collections::HashMap;
use std::sync::Arc;

/// A cache of FFT plans keyed by transform size.
///
/// Plans are immutable once built and handed out as [`Arc`] clones, so a
/// cache hit costs one atomic increment and zero allocations.
#[derive(Debug, Default)]
pub struct PlanCache {
    radix2: HashMap<usize, Arc<FftPlan>>,
    bluestein: HashMap<usize, Arc<BluesteinPlan>>,
    rfft: HashMap<usize, Arc<RealFftPlan>>,
}

impl PlanCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The radix-2 plan for `size`, building and caching it on first use.
    ///
    /// # Errors
    ///
    /// Propagates [`FftPlan::new`] errors (zero or non-power-of-two size).
    pub fn radix2(&mut self, size: usize) -> Result<Arc<FftPlan>, DspError> {
        if let Some(plan) = self.radix2.get(&size) {
            return Ok(Arc::clone(plan));
        }
        let plan = Arc::new(FftPlan::new(size)?);
        self.radix2.insert(size, Arc::clone(&plan));
        Ok(plan)
    }

    /// The arbitrary-length (Bluestein) plan for `size`, building and
    /// caching it on first use.
    ///
    /// # Errors
    ///
    /// Propagates [`BluesteinPlan::new`] errors (zero size).
    pub fn bluestein(&mut self, size: usize) -> Result<Arc<BluesteinPlan>, DspError> {
        if let Some(plan) = self.bluestein.get(&size) {
            return Ok(Arc::clone(plan));
        }
        let plan = Arc::new(BluesteinPlan::new(size)?);
        self.bluestein.insert(size, Arc::clone(&plan));
        Ok(plan)
    }

    /// The real-input FFT plan for `size`, building and caching it on
    /// first use.
    ///
    /// # Errors
    ///
    /// Propagates [`RealFftPlan::new`] errors (size below 2 or not a
    /// power of two).
    pub fn rfft(&mut self, size: usize) -> Result<Arc<RealFftPlan>, DspError> {
        if let Some(plan) = self.rfft.get(&size) {
            return Ok(Arc::clone(plan));
        }
        let plan = Arc::new(RealFftPlan::new(size)?);
        self.rfft.insert(size, Arc::clone(&plan));
        Ok(plan)
    }

    /// Number of cached plans (all kinds).
    #[must_use]
    pub fn len(&self) -> usize {
        self.radix2.len() + self.bluestein.len() + self.rfft.len()
    }

    /// `true` when no plan has been built yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.radix2.is_empty() && self.bluestein.is_empty() && self.rfft.is_empty()
    }
}

/// A pool of reusable `Vec<Complex64>` working buffers.
///
/// [`DspScratch::acquire_zeroed`] hands out a zero-filled buffer of the
/// requested length; [`DspScratch::release`] returns it to the pool with
/// its capacity intact. Once the pool has seen each hot-path size once,
/// acquire/release cycles allocate nothing.
#[derive(Debug, Default)]
pub struct DspScratch {
    pool: Vec<Vec<Complex64>>,
}

impl DspScratch {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A buffer of exactly `len` zeros. Reuses pooled capacity when any
    /// is available (largest-capacity buffer first, so big transforms
    /// keep their big buffers).
    pub fn acquire_zeroed(&mut self, len: usize) -> Vec<Complex64> {
        let mut buf = self.acquire();
        buf.resize(len, Complex64::ZERO);
        buf
    }

    /// An empty buffer (length 0) with whatever pooled capacity best
    /// fits; for callers that build output with `extend`-style writes.
    pub fn acquire(&mut self) -> Vec<Complex64> {
        match self.pool.pop() {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => Vec::new(),
        }
    }

    /// Returns a buffer to the pool for later reuse.
    pub fn release(&mut self, buf: Vec<Complex64>) {
        self.pool.push(buf);
    }

    /// Buffers currently parked in the pool.
    #[must_use]
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

/// Plans plus scratch: everything a planned DSP call needs.
///
/// Build one per worker (contexts are cheap but not shared — each worker
/// thread owns its own) and thread it through the `*_into` entry points.
///
/// Since the multi-backend redesign a context also carries its
/// [`DspBackend`] selection and the backend-specific state: f32 plans
/// and scratch for [`DspBackend::F32`], and matched-filter kernel
/// spectrum caches for the [`DspBackend::RealFft`] and f32 paths. The
/// default remains [`DspBackend::ScalarF64`], whose kernels are
/// bit-identical to the historical pipeline.
#[derive(Debug, Default)]
pub struct DspContext {
    /// Cached FFT plans.
    pub plans: PlanCache,
    /// Reusable working buffers.
    pub scratch: DspScratch,
    /// Which kernel set [`crate::Kernels`] calls dispatch to.
    backend: DspBackend,
    /// Single-precision plans and scratch (populated only by the f32
    /// backend).
    pub(crate) fp32: Fp32Engine,
    /// Cached forward spectra of matched-filter kernels, keyed by
    /// `(kernel_id, transform_len)`.
    pub(crate) kernel_spectra: HashMap<(u64, usize), Arc<Vec<Complex64>>>,
    /// Single-precision kernel spectra for the f32 backend.
    pub(crate) kernel_spectra32: HashMap<(u64, usize), Arc<Vec<Complex32>>>,
}

impl DspContext {
    /// A context with empty caches and the default
    /// ([`DspBackend::ScalarF64`]) backend.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A context dispatching to the given backend.
    #[must_use]
    pub fn with_backend(backend: DspBackend) -> Self {
        Self {
            backend,
            ..Self::default()
        }
    }

    /// A context whose backend comes from the `UWB_DSP_BACKEND`
    /// environment knob (unset → the bit-identical f64 default).
    #[must_use]
    pub fn from_env() -> Self {
        Self::with_backend(DspBackend::from_env())
    }

    /// The backend this context dispatches to.
    #[must_use]
    pub fn backend(&self) -> DspBackend {
        self.backend
    }

    /// Switches the backend. Cached plans, scratch, and kernel spectra
    /// are retained — they are keyed by size/kernel, not by backend.
    pub fn set_backend(&mut self, backend: DspBackend) {
        self.backend = backend;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_cache_reuses_plans() {
        let mut cache = PlanCache::new();
        let a = cache.radix2(64).unwrap();
        let b = cache.radix2(64).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same size must hit the cache");
        assert_eq!(cache.len(), 1);
        let c = cache.bluestein(1016).unwrap();
        let d = cache.bluestein(1016).unwrap();
        assert!(Arc::ptr_eq(&c, &d));
        assert_eq!(cache.len(), 2);
        assert!(!cache.is_empty());
    }

    #[test]
    fn plan_cache_propagates_errors() {
        let mut cache = PlanCache::new();
        assert!(cache.radix2(0).is_err());
        assert!(cache.radix2(100).is_err(), "non-power-of-two radix-2");
        assert!(cache.bluestein(0).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn scratch_recycles_capacity() {
        let mut scratch = DspScratch::new();
        let buf = scratch.acquire_zeroed(256);
        assert_eq!(buf.len(), 256);
        assert!(buf.iter().all(|z| *z == Complex64::ZERO));
        let ptr = buf.as_ptr();
        scratch.release(buf);
        assert_eq!(scratch.pooled(), 1);
        let again = scratch.acquire_zeroed(128);
        assert_eq!(again.as_ptr(), ptr, "pooled buffer must be reused");
        assert_eq!(again.len(), 128);
        assert_eq!(scratch.pooled(), 0);
    }

    #[test]
    fn scratch_zeroes_recycled_buffers() {
        let mut scratch = DspScratch::new();
        let mut buf = scratch.acquire_zeroed(8);
        buf.iter_mut().for_each(|z| *z = Complex64::ONE);
        scratch.release(buf);
        let buf = scratch.acquire_zeroed(8);
        assert!(buf.iter().all(|z| *z == Complex64::ZERO));
    }
}
