//! A minimal complex-number type used throughout the DSP substrate.
//!
//! The crate deliberately avoids external numeric dependencies; [`Complex64`]
//! implements exactly the operations the FFT, matched filter and CIR code
//! need, with the conventional mathematical semantics.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use uwb_dsp::Complex64;
///
/// let i = Complex64::I;
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Self = Self { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates.
    ///
    /// # Examples
    ///
    /// ```
    /// use uwb_dsp::Complex64;
    /// let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-12);
    /// assert!((z.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(magnitude: f64, phase: f64) -> Self {
        Self {
            re: magnitude * phase.cos(),
            im: magnitude * phase.sin(),
        }
    }

    /// `e^{iθ}`: a unit-magnitude complex number with the given phase.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// The magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The squared magnitude, cheaper than [`Complex64::abs`].
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// The multiplicative inverse `1/z`.
    ///
    /// Returns a non-finite value when `self` is zero, mirroring `f64`
    /// division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Self;
    // Division as multiplication by the reciprocal is the numerically
    // standard complex-division formulation, not an operator mix-up.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self {
            re: self.re / rhs,
            im: self.im / rhs,
        }
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |acc, z| acc + z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn addition_and_subtraction_are_componentwise() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert_eq!(a + b, Complex64::new(-2.0, 2.5));
        assert_eq!(a - b, Complex64::new(4.0, 1.5));
    }

    #[test]
    fn multiplication_follows_i_squared_is_minus_one() {
        assert!(close(Complex64::I * Complex64::I, -Complex64::ONE));
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert!(close(a * b, Complex64::new(5.0, 5.0)));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(2.5, -1.75);
        let b = Complex64::new(-0.5, 3.0);
        assert!(close((a * b) / b, a));
    }

    #[test]
    fn conjugate_negates_imaginary_part() {
        let z = Complex64::new(1.0, -4.0);
        assert_eq!(z.conj(), Complex64::new(1.0, 4.0));
        assert!((z * z.conj()).im.abs() < 1e-15);
        assert!(((z * z.conj()).re - z.norm_sqr()).abs() < 1e-12);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(3.0, 0.7);
        assert!((z.abs() - 3.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::FRAC_PI_8;
            assert!((Complex64::cis(theta).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn recip_of_unit_is_conjugate() {
        let z = Complex64::cis(1.1);
        assert!(close(z.recip(), z.conj()));
    }

    #[test]
    fn sum_accumulates() {
        let total: Complex64 = (0..4).map(|k| Complex64::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex64::new(6.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn scalar_ops() {
        let z = Complex64::new(1.0, -2.0);
        assert_eq!(z * 2.0, Complex64::new(2.0, -4.0));
        assert_eq!(2.0 * z, Complex64::new(2.0, -4.0));
        assert_eq!(z / 2.0, Complex64::new(0.5, -1.0));
    }
}
