//! Peak analysis utilities: maxima, local peaks, noise-floor estimation and
//! leading-edge detection.
//!
//! These are the generic building blocks underneath the paper's detection
//! algorithms; the algorithms themselves (search-and-subtract, threshold
//! scanning) live in the `concurrent-ranging` crate because they encode
//! paper-specific policy.

/// Index and value of the global maximum of a real sequence.
///
/// Returns `None` for an empty slice. NaN values are ignored (never selected
/// as the maximum unless all values are NaN, in which case `None` is
/// returned).
///
/// # Examples
///
/// ```
/// let (idx, val) = uwb_dsp::argmax(&[1.0, 5.0, 3.0]).unwrap();
/// assert_eq!(idx, 1);
/// assert_eq!(val, 5.0);
/// ```
pub fn argmax(values: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in values.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best
}

/// A detected local peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Sample index of the peak.
    pub index: usize,
    /// Value at the peak.
    pub value: f64,
}

/// Finds local maxima that exceed `min_height`, requiring each peak to be at
/// least `min_distance` samples from any previously accepted (higher) peak.
///
/// Peaks are returned sorted by descending value.
pub fn find_peaks(values: &[f64], min_height: f64, min_distance: usize) -> Vec<Peak> {
    let n = values.len();
    let mut candidates: Vec<Peak> = (0..n)
        .filter(|&i| {
            let v = values[i];
            // NaN values must fail the height test, so the comparison is
            // written to reject incomparable samples too.
            if v.partial_cmp(&min_height) == Some(std::cmp::Ordering::Less) || v.is_nan() {
                return false;
            }
            let left_ok = i == 0 || values[i - 1] <= v;
            let right_ok = i + 1 == n || values[i + 1] < v;
            left_ok && right_ok
        })
        .map(|i| Peak {
            index: i,
            value: values[i],
        })
        .collect();
    candidates.sort_by(|a, b| {
        b.value
            .partial_cmp(&a.value)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut accepted: Vec<Peak> = Vec::new();
    for c in candidates {
        if accepted
            .iter()
            .all(|p| c.index.abs_diff(p.index) >= min_distance)
        {
            accepted.push(c);
        }
    }
    accepted
}

/// Estimates the noise floor of a magnitude sequence as the mean of the
/// lowest `fraction` of samples (robust to a sparse set of strong peaks).
///
/// `fraction` is clamped to `(0, 1]`. Returns 0.0 for an empty input.
pub fn noise_floor(values: &[f64], fraction: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let fraction = fraction.clamp(f64::MIN_POSITIVE, 1.0);
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let count = ((sorted.len() as f64 * fraction).ceil() as usize).clamp(1, sorted.len());
    sorted[..count].iter().sum::<f64>() / count as f64
}

/// Finds the first sample whose value crosses `threshold` (leading-edge
/// detection, as a first-path estimator would do).
///
/// Returns `None` if no sample reaches the threshold.
pub fn leading_edge(values: &[f64], threshold: f64) -> Option<usize> {
    values.iter().position(|&v| v >= threshold)
}

/// Refines a peak position to sub-sample precision by fitting a parabola
/// through the peak sample and its two neighbours.
///
/// Returns the interpolated index as `f64`. Falls back to the integer index
/// at the boundaries or for degenerate (flat) neighbourhoods.
pub fn parabolic_interpolation(values: &[f64], index: usize) -> f64 {
    if index == 0 || index + 1 >= values.len() {
        return index as f64;
    }
    let (a, b, c) = (values[index - 1], values[index], values[index + 1]);
    let denom = a - 2.0 * b + c;
    if denom.abs() < 1e-300 {
        return index as f64;
    }
    let delta = 0.5 * (a - c) / denom;
    // A genuine local max yields |delta| <= 0.5; clamp against noise.
    index as f64 + delta.clamp(-0.5, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_basic() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[2.0]), Some((0, 2.0)));
        assert_eq!(argmax(&[1.0, 3.0, 2.0, 3.0]), Some((1, 3.0)));
    }

    #[test]
    fn argmax_ignores_nan() {
        assert_eq!(argmax(&[f64::NAN, 1.0, f64::NAN]), Some((1, 1.0)));
        assert_eq!(argmax(&[f64::NAN, f64::NAN]), None);
    }

    #[test]
    fn find_peaks_detects_separated_maxima() {
        let mut values = vec![0.0; 50];
        values[10] = 5.0;
        values[11] = 1.0;
        values[30] = 3.0;
        let peaks = find_peaks(&values, 0.5, 3);
        assert_eq!(peaks.len(), 2);
        assert_eq!(peaks[0].index, 10);
        assert_eq!(peaks[1].index, 30);
    }

    #[test]
    fn find_peaks_enforces_min_distance() {
        let mut values = vec![0.0; 20];
        values[5] = 4.0;
        values[7] = 3.0; // too close to index 5
        values[15] = 2.0;
        let peaks = find_peaks(&values, 0.5, 4);
        let indices: Vec<usize> = peaks.iter().map(|p| p.index).collect();
        assert_eq!(indices, vec![5, 15]);
    }

    #[test]
    fn find_peaks_respects_min_height() {
        let mut values = vec![0.0; 10];
        values[3] = 0.4;
        values[7] = 2.0;
        let peaks = find_peaks(&values, 1.0, 1);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 7);
    }

    #[test]
    fn find_peaks_handles_boundaries() {
        let values = [5.0, 1.0, 0.0, 1.0, 6.0];
        let peaks = find_peaks(&values, 0.5, 1);
        let indices: Vec<usize> = peaks.iter().map(|p| p.index).collect();
        assert!(indices.contains(&0));
        assert!(indices.contains(&4));
    }

    #[test]
    fn noise_floor_robust_to_peaks() {
        let mut values = vec![1.0; 100];
        values[50] = 1000.0;
        let floor = noise_floor(&values, 0.5);
        assert!((floor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noise_floor_empty_is_zero() {
        assert_eq!(noise_floor(&[], 0.5), 0.0);
    }

    #[test]
    fn leading_edge_finds_first_crossing() {
        let values = [0.1, 0.2, 0.9, 0.4, 1.5];
        assert_eq!(leading_edge(&values, 0.8), Some(2));
        assert_eq!(leading_edge(&values, 2.0), None);
    }

    #[test]
    fn parabolic_interpolation_recovers_subsample_peak() {
        // Samples of a parabola peaking at x = 10.3.
        let peak_x = 10.3;
        let values: Vec<f64> = (0..20)
            .map(|i| 10.0 - (i as f64 - peak_x).powi(2))
            .collect();
        let (idx, _) = argmax(&values).unwrap();
        let refined = parabolic_interpolation(&values, idx);
        assert!((refined - peak_x).abs() < 1e-9);
    }

    #[test]
    fn parabolic_interpolation_boundary_fallback() {
        let values = [3.0, 1.0, 0.5];
        assert_eq!(parabolic_interpolation(&values, 0), 0.0);
        assert_eq!(parabolic_interpolation(&values, 2), 2.0);
    }
}
