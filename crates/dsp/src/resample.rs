//! FFT-based band-limited resampling.
//!
//! The paper's detection pipeline (Sect. IV, step 1) upsamples the raw
//! 1016-tap CIR "using fast Fourier transform in order to obtain a smoother
//! signal". [`upsample_fft`] implements exactly that: transform, zero-pad the
//! spectrum symmetrically around Nyquist, and inverse-transform at the larger
//! size. Original samples are preserved exactly (up to numerical error) at
//! indices `k·factor`.

use crate::bluestein::BluesteinPlan;
use crate::complex::Complex64;
use crate::error::DspError;
use crate::plan::DspContext;

/// Upsamples a complex signal by an integer factor using FFT zero-padding.
///
/// The output has length `signal.len() * factor` and satisfies
/// `output[k * factor] ≈ signal[k]`.
///
/// # Errors
///
/// - [`DspError::EmptyInput`] when `signal` is empty.
/// - [`DspError::InvalidFactor`] when `factor` is zero.
///
/// # Examples
///
/// ```
/// use uwb_dsp::{upsample_fft, Complex64};
/// # fn main() -> Result<(), uwb_dsp::DspError> {
/// let signal: Vec<Complex64> = (0..8)
///     .map(|i| Complex64::from_real((i as f64 * 0.7).sin()))
///     .collect();
/// let up = upsample_fft(&signal, 4)?;
/// assert_eq!(up.len(), 32);
/// assert!((up[8].re - signal[2].re).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn upsample_fft(signal: &[Complex64], factor: usize) -> Result<Vec<Complex64>, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if factor == 0 {
        return Err(DspError::InvalidFactor { factor });
    }
    if factor == 1 {
        return Ok(signal.to_vec());
    }
    let n = signal.len();
    let m = n * factor;

    let mut spectrum = signal.to_vec();
    BluesteinPlan::new(n)?.forward(&mut spectrum);

    // Insert zeros around the Nyquist frequency. For even n the Nyquist bin
    // is split in half between the positive and negative sides to keep the
    // interpolated signal consistent with a real-valued original.
    let mut padded = vec![Complex64::ZERO; m];
    let half = n / 2;
    if n.is_multiple_of(2) {
        padded[..half].copy_from_slice(&spectrum[..half]);
        let nyq = spectrum[half].scale(0.5);
        padded[half] = nyq;
        padded[m - half] = nyq;
        padded[m - half + 1..].copy_from_slice(&spectrum[half + 1..]);
    } else {
        // Odd n: positive bins 0..=half, negative bins half+1..n.
        padded[..=half].copy_from_slice(&spectrum[..=half]);
        padded[m - half..].copy_from_slice(&spectrum[half + 1..]);
    }

    BluesteinPlan::new(m)?.inverse(&mut padded);
    let scale = factor as f64;
    for z in padded.iter_mut() {
        *z = z.scale(scale);
    }
    Ok(padded)
}

/// Planned variant of [`upsample_fft`]: writes the upsampled signal into
/// `out`, drawing cached Bluestein plans and working buffers from `ctx`.
/// Bit-identical to `upsample_fft`; in steady state the call allocates
/// nothing.
///
/// # Errors
///
/// Same conditions as [`upsample_fft`].
pub fn upsample_fft_into(
    signal: &[Complex64],
    factor: usize,
    out: &mut Vec<Complex64>,
    ctx: &mut DspContext,
) -> Result<(), DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if factor == 0 {
        return Err(DspError::InvalidFactor { factor });
    }
    if factor == 1 {
        out.clear();
        out.extend_from_slice(signal);
        return Ok(());
    }
    let n = signal.len();
    let m = n * factor;

    let forward = ctx.plans.bluestein(n)?;
    let inverse = ctx.plans.bluestein(m)?;

    let mut spectrum = ctx.scratch.acquire();
    spectrum.extend_from_slice(signal);
    forward.forward_with(&mut spectrum, &mut ctx.scratch);

    // Same Nyquist-split layout as `upsample_fft`.
    out.clear();
    out.resize(m, Complex64::ZERO);
    let half = n / 2;
    if n.is_multiple_of(2) {
        out[..half].copy_from_slice(&spectrum[..half]);
        let nyq = spectrum[half].scale(0.5);
        out[half] = nyq;
        out[m - half] = nyq;
        out[m - half + 1..].copy_from_slice(&spectrum[half + 1..]);
    } else {
        // Odd n: positive bins 0..=half, negative bins half+1..n.
        out[..=half].copy_from_slice(&spectrum[..=half]);
        out[m - half..].copy_from_slice(&spectrum[half + 1..]);
    }
    ctx.scratch.release(spectrum);

    inverse.inverse_with(out, &mut ctx.scratch);
    let scale = factor as f64;
    for z in out.iter_mut() {
        *z = z.scale(scale);
    }
    Ok(())
}

/// Upsamples a real signal by an integer factor, returning real samples.
///
/// # Errors
///
/// Same conditions as [`upsample_fft`].
pub fn upsample_real(signal: &[f64], factor: usize) -> Result<Vec<f64>, DspError> {
    let complex: Vec<Complex64> = signal.iter().map(|&x| Complex64::from_real(x)).collect();
    Ok(upsample_fft(&complex, factor)?
        .into_iter()
        .map(|z| z.re)
        .collect())
}

/// Applies a circular fractional delay of `delay` samples (may be negative
/// or non-integer) using the FFT shift theorem.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when `signal` is empty.
pub fn fractional_delay(signal: &[Complex64], delay: f64) -> Result<Vec<Complex64>, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let n = signal.len();
    let plan = BluesteinPlan::new(n)?;
    let mut spectrum = signal.to_vec();
    plan.forward(&mut spectrum);
    for (k, z) in spectrum.iter_mut().enumerate() {
        // Signed frequency index for proper phase ramp.
        let freq = if k <= n / 2 {
            k as f64
        } else {
            k as f64 - n as f64
        };
        *z *= Complex64::cis(-2.0 * std::f64::consts::PI * freq * delay / n as f64);
    }
    plan.inverse(&mut spectrum);
    Ok(spectrum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_zero_factor() {
        assert!(matches!(upsample_fft(&[], 2), Err(DspError::EmptyInput)));
        assert!(matches!(
            upsample_fft(&[Complex64::ONE], 0),
            Err(DspError::InvalidFactor { factor: 0 })
        ));
    }

    #[test]
    fn factor_one_is_identity() {
        let signal = vec![Complex64::new(1.0, 2.0), Complex64::new(-0.5, 0.0)];
        assert_eq!(upsample_fft(&signal, 1).unwrap(), signal);
    }

    #[test]
    fn preserves_original_samples() {
        for &n in &[8usize, 15, 127, 254] {
            let signal: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.21).sin(), (i as f64 * 0.34).cos()))
                .collect();
            for &factor in &[2usize, 4, 8] {
                let up = upsample_fft(&signal, factor).unwrap();
                assert_eq!(up.len(), n * factor);
                for (k, &orig) in signal.iter().enumerate() {
                    assert!(
                        (up[k * factor] - orig).abs() < 1e-8,
                        "n={n} factor={factor} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn interpolates_band_limited_sinusoid_exactly() {
        // A sinusoid below Nyquist must be reconstructed exactly between
        // samples by ideal band-limited interpolation.
        let n = 64;
        let freq = 3.0; // cycles per n samples, well below Nyquist
        let signal: Vec<Complex64> = (0..n)
            .map(|i| {
                Complex64::from_real(
                    (2.0 * std::f64::consts::PI * freq * i as f64 / n as f64).cos(),
                )
            })
            .collect();
        let factor = 4;
        let up = upsample_fft(&signal, factor).unwrap();
        for (j, z) in up.iter().enumerate() {
            let t = j as f64 / factor as f64;
            let expected = (2.0 * std::f64::consts::PI * freq * t / n as f64).cos();
            assert!((z.re - expected).abs() < 1e-8, "j={j}");
            assert!(z.im.abs() < 1e-8);
        }
    }

    #[test]
    fn upsample_into_matches_allocating_path_bitwise() {
        let mut ctx = DspContext::new();
        let mut out = Vec::new();
        // Even, odd, and the DW1000 CIR length; factors incl. the paper's 8.
        for &n in &[8usize, 15, 254, 1016] {
            let signal: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.21).sin(), (i as f64 * 0.34).cos()))
                .collect();
            for &factor in &[1usize, 2, 8] {
                let reference = upsample_fft(&signal, factor).unwrap();
                upsample_fft_into(&signal, factor, &mut out, &mut ctx).unwrap();
                assert_eq!(out, reference, "n={n} factor={factor}");
                // Warm-context second pass: still bit-identical.
                upsample_fft_into(&signal, factor, &mut out, &mut ctx).unwrap();
                assert_eq!(out, reference, "warm n={n} factor={factor}");
            }
        }
        assert!(matches!(
            upsample_fft_into(&[], 2, &mut out, &mut ctx),
            Err(DspError::EmptyInput)
        ));
        assert!(matches!(
            upsample_fft_into(&[Complex64::ONE], 0, &mut out, &mut ctx),
            Err(DspError::InvalidFactor { factor: 0 })
        ));
    }

    #[test]
    fn real_wrapper_matches_complex_path() {
        let signal = [0.0, 1.0, 0.0, -1.0, 0.0, 1.0, 0.0, -1.0];
        let up = upsample_real(&signal, 2).unwrap();
        assert_eq!(up.len(), 16);
        for (k, &orig) in signal.iter().enumerate() {
            assert!((up[2 * k] - orig).abs() < 1e-8);
        }
    }

    #[test]
    fn fractional_delay_integer_shift() {
        let n = 32;
        let mut signal = vec![Complex64::ZERO; n];
        // Use a smooth (band-limited) signal to avoid Gibbs artefacts.
        for (i, z) in signal.iter_mut().enumerate() {
            *z = Complex64::from_real(
                (2.0 * std::f64::consts::PI * 2.0 * i as f64 / n as f64).sin(),
            );
        }
        let shifted = fractional_delay(&signal, 3.0).unwrap();
        for (i, s) in shifted.iter().enumerate() {
            let src = (i + n - 3) % n;
            assert!((*s - signal[src]).abs() < 1e-8, "i={i}");
        }
    }

    #[test]
    fn fractional_delay_half_sample_on_sinusoid() {
        let n = 64;
        let f = 2.0;
        let signal: Vec<Complex64> = (0..n)
            .map(|i| {
                Complex64::from_real((2.0 * std::f64::consts::PI * f * i as f64 / n as f64).sin())
            })
            .collect();
        let shifted = fractional_delay(&signal, 0.5).unwrap();
        for (i, z) in shifted.iter().enumerate() {
            let expected = (2.0 * std::f64::consts::PI * f * (i as f64 - 0.5) / n as f64).sin();
            assert!((z.re - expected).abs() < 1e-8, "i={i}");
        }
    }
}
