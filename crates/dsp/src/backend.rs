//! Runtime-selectable DSP backends.
//!
//! Every hot kernel in the detection pipeline — upsampling, matched
//! filtering, magnitude extraction — can run on one of three backends:
//!
//! | Backend | Label | Contract |
//! |---------|-------|----------|
//! | [`DspBackend::ScalarF64`] | `f64` | bit-identical to the historical scalar complex-f64 path; the default |
//! | [`DspBackend::RealFft`] | `rfft` | f64 precision, but real-input structure is exploited: matched-filter kernel spectra are cached (the template is real and never changes) and magnitudes use `sqrt(norm_sqr)` instead of `hypot` |
//! | [`DspBackend::F32`] | `f32` | the same kernel set in single precision; ~2⁻²⁴ relative rounding, far below the CIR noise floor of every paper scenario |
//!
//! The backend is a property of the [`crate::DspContext`]; detectors
//! and experiment binaries pick it up via the `UWB_DSP_BACKEND`
//! environment knob (through the shared `uwb_obs::envknob` policy:
//! unset → default silently, unrecognized → warn once and fall back).

use uwb_obs::envknob;

/// The environment knob read by [`DspBackend::from_env`].
pub const BACKEND_ENV_VAR: &str = "UWB_DSP_BACKEND";

/// Which kernel implementations a [`crate::DspContext`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DspBackend {
    /// Scalar complex-f64 kernels — bit-identical to the historical
    /// pipeline and therefore the default.
    #[default]
    ScalarF64,
    /// f64 kernels that exploit real-input structure: cached real-kernel
    /// spectra for matched filters (one forward FFT saved per
    /// convolution) and `sqrt(norm_sqr)` magnitudes.
    RealFft,
    /// Single-precision kernels: f32 FFT/convolution/upsampling with
    /// conversion at the `Complex64` API boundary.
    F32,
}

impl DspBackend {
    /// Every backend, in documentation order.
    pub const ALL: [DspBackend; 3] = [DspBackend::ScalarF64, DspBackend::RealFft, DspBackend::F32];

    /// The canonical label accepted by [`DspBackend::parse`] and the
    /// `UWB_DSP_BACKEND` knob.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DspBackend::ScalarF64 => "f64",
            DspBackend::RealFft => "rfft",
            DspBackend::F32 => "f32",
        }
    }

    /// Parses a backend label (trimmed, ASCII-case-insensitive).
    #[must_use]
    pub fn parse(raw: &str) -> Option<DspBackend> {
        let trimmed = raw.trim();
        Self::ALL
            .into_iter()
            .find(|b| b.label().eq_ignore_ascii_case(trimmed))
    }

    /// Reads the backend from `UWB_DSP_BACKEND`.
    ///
    /// Unset → [`DspBackend::ScalarF64`] silently; anything
    /// unrecognized warns on stderr (via the shared envknob policy) and
    /// falls back to the default.
    #[must_use]
    pub fn from_env() -> DspBackend {
        let labels: Vec<&str> = Self::ALL.iter().map(|b| b.label()).collect();
        let label =
            envknob::label_from_env(BACKEND_ENV_VAR, DspBackend::default().label(), &labels);
        Self::parse(label).unwrap_or_default()
    }
}

impl std::fmt::Display for DspBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for backend in DspBackend::ALL {
            assert_eq!(DspBackend::parse(backend.label()), Some(backend));
            assert_eq!(backend.to_string(), backend.label());
        }
    }

    #[test]
    fn parse_is_forgiving_about_case_and_whitespace() {
        assert_eq!(DspBackend::parse(" RFFT "), Some(DspBackend::RealFft));
        assert_eq!(DspBackend::parse("F32"), Some(DspBackend::F32));
        assert_eq!(DspBackend::parse("f16"), None);
        assert_eq!(DspBackend::parse(""), None);
    }

    #[test]
    fn default_is_the_bit_identical_scalar_backend() {
        assert_eq!(DspBackend::default(), DspBackend::ScalarF64);
    }
}
