//! Bluestein's algorithm: FFT for arbitrary (non-power-of-two) lengths.
//!
//! The DW1000 CIR accumulator is 1016 taps long — not a power of two — so
//! frequency-domain processing of raw CIR buffers needs an arbitrary-length
//! transform. Bluestein's chirp-z trick re-expresses a length-`N` DFT as a
//! circular convolution of length `M ≥ 2N-1`, which is evaluated with the
//! radix-2 FFT from [`crate::fft`].

use crate::complex::Complex64;
use crate::error::DspError;
use crate::fft::{next_power_of_two, Direction, FftPlan};
use crate::plan::DspScratch;
use std::f64::consts::PI;

/// A reusable arbitrary-length FFT plan based on Bluestein's algorithm.
///
/// For power-of-two sizes this delegates directly to [`FftPlan`], so it can
/// be used as a universal planner.
///
/// # Examples
///
/// ```
/// use uwb_dsp::{BluesteinPlan, Complex64};
///
/// # fn main() -> Result<(), uwb_dsp::DspError> {
/// let plan = BluesteinPlan::new(1016)?; // DW1000 CIR length
/// let mut data = vec![Complex64::ONE; 1016];
/// plan.forward(&mut data);
/// assert!((data[0].re - 1016.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BluesteinPlan {
    size: usize,
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    /// Power-of-two fast path.
    Radix2(FftPlan),
    /// General case.
    Chirp {
        /// Length of the embedded circular convolution (power of two).
        conv_len: usize,
        plan: FftPlan,
        /// Chirp `w[n] = e^{-iπ n²/N}` for `n in 0..N`.
        chirp: Vec<Complex64>,
        /// FFT of the zero-padded conjugate-chirp kernel.
        kernel_fft: Vec<Complex64>,
    },
}

impl BluesteinPlan {
    /// Creates a plan for transforms of length `size`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] when `size` is zero.
    pub fn new(size: usize) -> Result<Self, DspError> {
        if size == 0 {
            return Err(DspError::EmptyInput);
        }
        if size.is_power_of_two() {
            return Ok(Self {
                size,
                inner: Inner::Radix2(FftPlan::new(size)?),
            });
        }
        let conv_len = next_power_of_two(2 * size - 1);
        let plan = FftPlan::new(conv_len)?;
        // w[n] = e^{-iπ n²/N}; compute n² mod 2N to avoid precision loss for
        // large n (the chirp phase is periodic with period 2N in n²).
        let chirp: Vec<Complex64> = (0..size)
            .map(|n| {
                let sq = (n as u128 * n as u128) % (2 * size as u128);
                Complex64::cis(-PI * sq as f64 / size as f64)
            })
            .collect();
        let mut kernel = vec![Complex64::ZERO; conv_len];
        kernel[0] = chirp[0].conj();
        for n in 1..size {
            let v = chirp[n].conj();
            kernel[n] = v;
            kernel[conv_len - n] = v;
        }
        // Uncounted: construction work is amortised per plan cache (one
        // fill per worker), so it must not enter the deterministic work
        // totals that are compared across thread counts.
        plan.transform_unprofiled(&mut kernel, Direction::Forward);
        Ok(Self {
            size,
            inner: Inner::Chirp {
                conv_len,
                plan,
                chirp,
                kernel_fft: kernel,
            },
        })
    }

    /// The transform length this plan was built for.
    pub fn size(&self) -> usize {
        self.size
    }

    /// In-place forward DFT.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from [`BluesteinPlan::size`].
    pub fn forward(&self, data: &mut [Complex64]) {
        self.transform(data, Direction::Forward);
    }

    /// In-place inverse DFT (normalized by `1/N`).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from [`BluesteinPlan::size`].
    pub fn inverse(&self, data: &mut [Complex64]) {
        self.transform(data, Direction::Inverse);
    }

    /// In-place transform in the given direction.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from [`BluesteinPlan::size`].
    pub fn transform(&self, data: &mut [Complex64], direction: Direction) {
        match &self.inner {
            Inner::Radix2(_) => self.transform_radix2(data, direction),
            Inner::Chirp { conv_len, .. } => {
                let mut buf = vec![Complex64::ZERO; *conv_len];
                self.chirp_transform(data, direction, &mut buf);
            }
        }
    }

    /// In-place forward DFT drawing working memory from `scratch` — the
    /// planned hot-path entry point (no per-call allocation once the
    /// scratch arena is warm). Bit-identical to [`BluesteinPlan::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from [`BluesteinPlan::size`].
    pub fn forward_with(&self, data: &mut [Complex64], scratch: &mut DspScratch) {
        self.transform_with(data, Direction::Forward, scratch);
    }

    /// In-place inverse DFT drawing working memory from `scratch`.
    /// Bit-identical to [`BluesteinPlan::inverse`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from [`BluesteinPlan::size`].
    pub fn inverse_with(&self, data: &mut [Complex64], scratch: &mut DspScratch) {
        self.transform_with(data, Direction::Inverse, scratch);
    }

    /// In-place transform drawing working memory from `scratch`.
    /// Bit-identical to [`BluesteinPlan::transform`]: the chirp core is
    /// shared, only the provenance of the convolution buffer differs.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from [`BluesteinPlan::size`].
    pub fn transform_with(
        &self,
        data: &mut [Complex64],
        direction: Direction,
        scratch: &mut DspScratch,
    ) {
        match &self.inner {
            Inner::Radix2(_) => self.transform_radix2(data, direction),
            Inner::Chirp { conv_len, .. } => {
                let mut buf = scratch.acquire_zeroed(*conv_len);
                self.chirp_transform(data, direction, &mut buf);
                scratch.release(buf);
            }
        }
    }

    fn transform_radix2(&self, data: &mut [Complex64], direction: Direction) {
        self.check_len(data.len());
        match &self.inner {
            Inner::Radix2(plan) => plan.transform(data, direction),
            Inner::Chirp { .. } => unreachable!("radix-2 dispatch checked by caller"),
        }
    }

    /// The chirp-z core over a caller-provided zero-filled buffer of
    /// length `conv_len`.
    fn chirp_transform(&self, data: &mut [Complex64], direction: Direction, buf: &mut [Complex64]) {
        self.check_len(data.len());
        let Inner::Chirp {
            conv_len,
            plan,
            chirp,
            kernel_fft,
        } = &self.inner
        else {
            unreachable!("chirp dispatch checked by caller")
        };
        assert_eq!(buf.len(), *conv_len, "convolution buffer length");
        let n = self.size;
        // Chirp pre/post-multiplies (2N) plus the pointwise kernel
        // product (conv_len); the two embedded radix-2 transforms count
        // their own butterflies.
        uwb_obs::profile::work("bluestein.cmul", 2 * n as u64 + *conv_len as u64);
        // The inverse transform X[k] with exponent +2πi·kn/N equals
        // the conjugate of the forward transform of the conjugated
        // input, scaled by 1/N. Reuse the forward machinery.
        if direction == Direction::Inverse {
            for z in data.iter_mut() {
                *z = z.conj();
            }
        }

        for i in 0..n {
            buf[i] = data[i] * chirp[i];
        }
        plan.forward(buf);
        for (b, k) in buf.iter_mut().zip(kernel_fft) {
            *b *= *k;
        }
        plan.inverse(buf);
        for k in 0..n {
            data[k] = buf[k] * chirp[k];
        }

        if direction == Direction::Inverse {
            let scale = 1.0 / n as f64;
            for z in data.iter_mut() {
                *z = z.conj().scale(scale);
            }
        }
    }

    fn check_len(&self, len: usize) {
        assert_eq!(
            len, self.size,
            "Bluestein plan size {} does not match buffer length {}",
            self.size, len
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::dft_reference;

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (*x - *y).abs() < tol,
                "mismatch at {i}: {x} vs {y} (tol {tol})"
            );
        }
    }

    #[test]
    fn rejects_zero_size() {
        assert!(matches!(BluesteinPlan::new(0), Err(DspError::EmptyInput)));
    }

    #[test]
    fn matches_reference_for_odd_sizes() {
        for &n in &[3usize, 5, 7, 15, 127, 1016] {
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.13).sin(), (i as f64 * 0.41).cos()))
                .collect();
            let expected = dft_reference(&input, Direction::Forward);
            let mut actual = input.clone();
            BluesteinPlan::new(n).unwrap().forward(&mut actual);
            assert_close(&actual, &expected, 1e-7 * n as f64);
        }
    }

    #[test]
    fn power_of_two_fast_path_matches_reference() {
        let n = 64;
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(i as f64, -(i as f64)))
            .collect();
        let expected = dft_reference(&input, Direction::Forward);
        let mut actual = input.clone();
        BluesteinPlan::new(n).unwrap().forward(&mut actual);
        assert_close(&actual, &expected, 1e-8);
    }

    #[test]
    fn roundtrip_arbitrary_size() {
        let n = 1016;
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.77).sin(), (i as f64 * 0.05).cos()))
            .collect();
        let plan = BluesteinPlan::new(n).unwrap();
        let mut data = input.clone();
        plan.forward(&mut data);
        plan.inverse(&mut data);
        assert_close(&data, &input, 1e-8);
    }

    #[test]
    fn inverse_matches_reference() {
        let n = 33;
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(1.0 / (1.0 + i as f64), (i as f64).sqrt()))
            .collect();
        let expected = dft_reference(&input, Direction::Inverse);
        let mut actual = input.clone();
        BluesteinPlan::new(n).unwrap().inverse(&mut actual);
        assert_close(&actual, &expected, 1e-8);
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let n = 37;
        let mut data = vec![Complex64::ZERO; n];
        data[0] = Complex64::ONE;
        BluesteinPlan::new(n).unwrap().forward(&mut data);
        for z in &data {
            assert!((z.re - 1.0).abs() < 1e-9 && z.im.abs() < 1e-9);
        }
    }
}
