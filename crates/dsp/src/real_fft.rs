//! Real-input FFT via the pack-two-reals-per-complex-FFT trick.
//!
//! A length-`N` DFT of a *real* sequence carries only `N/2 + 1`
//! independent bins (the rest are conjugate mirrors), so computing it
//! with a full complex FFT wastes half the butterflies. [`RealFftPlan`]
//! packs the even/odd samples into a length-`N/2` complex buffer, runs
//! one half-size complex FFT, and untangles the result into the full
//! Hermitian spectrum: `(N/4)·log₂(N/2)` butterflies plus `N/2`
//! untangle operations instead of `(N/2)·log₂N` butterflies.
//!
//! The detection pipeline uses this for matched-filter *kernel* spectra
//! — the time-reversed pulse templates are purely real — and the
//! `dsp.rfft_1024` perfwatch workload races it against the complex
//! plan. The CIR itself is complex baseband and keeps the complex path.

use crate::complex::Complex64;
use crate::error::DspError;
use crate::fft::{Direction, FftPlan};
use crate::plan::DspScratch;
use std::f64::consts::PI;

/// A reusable forward FFT plan for real input of a fixed power-of-two
/// length, producing the full complex (Hermitian) spectrum.
///
/// # Examples
///
/// ```
/// use uwb_dsp::{DspScratch, RealFftPlan};
///
/// # fn main() -> Result<(), uwb_dsp::DspError> {
/// let plan = RealFftPlan::new(8)?;
/// let mut scratch = DspScratch::new();
/// let mut out = Vec::new();
/// plan.forward_into(&[1.0; 8], &mut out, &mut scratch);
/// // The DFT of a constant is an impulse at bin zero.
/// assert!((out[0].re - 8.0).abs() < 1e-12);
/// assert!(out[1..].iter().all(|z| z.abs() < 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RealFftPlan {
    size: usize,
    /// The half-length complex plan the packed samples go through.
    half: FftPlan,
    /// Twiddles `e^{-2πi·k/N}` for `k in 0..N/2` (the untangle stage).
    twiddles: Vec<Complex64>,
}

impl RealFftPlan {
    /// Creates a plan for real transforms of length `size`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::NotPowerOfTwo`] unless `size` is a power of
    /// two and at least 2 (a length-1 transform has no even/odd split).
    pub fn new(size: usize) -> Result<Self, DspError> {
        if size < 2 || !size.is_power_of_two() {
            return Err(DspError::NotPowerOfTwo { size });
        }
        let half = FftPlan::new(size / 2)?;
        let twiddles = (0..size / 2)
            .map(|k| Complex64::cis(-2.0 * PI * k as f64 / size as f64))
            .collect();
        Ok(Self {
            size,
            half,
            twiddles,
        })
    }

    /// The (real) transform length this plan was built for.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Forward FFT of `input`, writing the full `size`-bin complex
    /// spectrum into `out` (cleared first). Working memory comes from
    /// `scratch`; in steady state the call allocates nothing beyond
    /// `out`'s first growth.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`RealFftPlan::size`].
    pub fn forward_into(&self, input: &[f64], out: &mut Vec<Complex64>, scratch: &mut DspScratch) {
        // The untangle stage touches each of the N/2 packed bins once;
        // the embedded half-size transform counts its own butterflies.
        uwb_obs::profile::work("rfft.untangle", self.size as u64 / 2);
        self.execute(input, out, scratch, true);
    }

    /// Allocating convenience wrapper around
    /// [`RealFftPlan::forward_into`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`RealFftPlan::size`].
    #[must_use]
    pub fn forward(&self, input: &[f64]) -> Vec<Complex64> {
        let mut scratch = DspScratch::new();
        let mut out = Vec::new();
        self.forward_into(input, &mut out, &mut scratch);
        out
    }

    /// The uncounted variant used for one-time cache population (the
    /// matched-filter kernel spectra): work counters must reflect only
    /// per-call execution, invariant to how many workers warmed their
    /// caches.
    pub(crate) fn forward_into_unprofiled(
        &self,
        input: &[f64],
        out: &mut Vec<Complex64>,
        scratch: &mut DspScratch,
    ) {
        self.execute(input, out, scratch, false);
    }

    fn execute(
        &self,
        input: &[f64],
        out: &mut Vec<Complex64>,
        scratch: &mut DspScratch,
        profiled: bool,
    ) {
        assert_eq!(
            input.len(),
            self.size,
            "real FFT plan size {} does not match input length {}",
            self.size,
            input.len()
        );
        let n = self.size;
        let h = n / 2;
        let mut packed = scratch.acquire_zeroed(h);
        for (k, slot) in packed.iter_mut().enumerate() {
            *slot = Complex64::new(input[2 * k], input[2 * k + 1]);
        }
        if profiled {
            self.half.transform(&mut packed, Direction::Forward);
        } else {
            self.half
                .transform_unprofiled(&mut packed, Direction::Forward);
        }
        out.clear();
        out.resize(n, Complex64::ZERO);
        // Z[k] = E[k] + i·O[k] where E/O are the DFTs of the even/odd
        // samples. DC and Nyquist are purely real.
        out[0] = Complex64::new(packed[0].re + packed[0].im, 0.0);
        out[h] = Complex64::new(packed[0].re - packed[0].im, 0.0);
        for k in 1..h {
            let a = packed[k];
            let b = packed[h - k].conj();
            let even = (a + b).scale(0.5);
            let half_diff = (a - b).scale(0.5);
            // O[k] = -i · (Z[k] - conj(Z[H-k])) / 2.
            let odd = Complex64::new(half_diff.im, -half_diff.re);
            let x = even + self.twiddles[k] * odd;
            out[k] = x;
            out[n - k] = x.conj();
        }
        scratch.release(packed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::fft;

    fn reference_spectrum(input: &[f64]) -> Vec<Complex64> {
        let mut data: Vec<Complex64> = input.iter().map(|&x| Complex64::from_real(x)).collect();
        fft(&mut data).unwrap();
        data
    }

    #[test]
    fn rejects_invalid_sizes() {
        for size in [0usize, 1, 3, 12, 1000] {
            assert!(
                matches!(RealFftPlan::new(size), Err(DspError::NotPowerOfTwo { .. })),
                "size {size}"
            );
        }
    }

    #[test]
    fn matches_complex_fft_for_real_input() {
        for &n in &[2usize, 4, 16, 256, 1024] {
            let input: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 0.1).collect();
            let expected = reference_spectrum(&input);
            let actual = RealFftPlan::new(n).unwrap().forward(&input);
            assert_eq!(actual.len(), n);
            for (k, (x, y)) in actual.iter().zip(&expected).enumerate() {
                assert!((*x - *y).abs() < 1e-9 * n as f64, "n={n} k={k}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn spectrum_is_hermitian() {
        let n = 64;
        let input: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos()).collect();
        let spectrum = RealFftPlan::new(n).unwrap().forward(&input);
        assert!(spectrum[0].im.abs() < 1e-12, "DC bin must be real");
        assert!(spectrum[n / 2].im.abs() < 1e-12, "Nyquist bin must be real");
        for k in 1..n / 2 {
            let mirror = spectrum[n - k].conj();
            assert!((spectrum[k] - mirror).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn forward_into_reuses_scratch_and_matches_forward() {
        let n = 128;
        let input: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin()).collect();
        let plan = RealFftPlan::new(n).unwrap();
        let reference = plan.forward(&input);
        let mut scratch = DspScratch::new();
        let mut out = Vec::new();
        for pass in 0..2 {
            plan.forward_into(&input, &mut out, &mut scratch);
            assert_eq!(out, reference, "pass {pass}");
        }
        assert_eq!(scratch.pooled(), 1, "packed buffer must return to pool");
    }

    #[test]
    fn wrong_length_panics() {
        let plan = RealFftPlan::new(8).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = plan.forward(&[1.0; 4]);
        }));
        assert!(result.is_err());
    }
}
