//! Backend-generic kernel entry points for the detection pipeline.
//!
//! [`Kernels`] is the seam between the detector logic (peak search,
//! template subtraction, sub-sample refinement — always f64) and the
//! numeric kernels that dominate its runtime (FFT upsampling, the
//! matched-filter bank, shape-classification correlations). A
//! [`DspContext`] implements the trait by dispatching on its
//! [`DspBackend`] selection:
//!
//! - [`DspBackend::ScalarF64`] routes to the historical planned f64
//!   kernels — outputs are **bit-identical** to the pre-redesign
//!   pipeline, which the campaign determinism contract relies on.
//! - [`DspBackend::RealFft`] keeps f64 arithmetic but caches the
//!   forward spectra of matched-filter kernels (built through the
//!   half-cost real-input FFT when the template is real), removing one
//!   of the three transforms from every FFT-path matched filter.
//! - [`DspBackend::F32`] runs the transforms in single precision —
//!   half the memory traffic through the 16384-point convolution FFTs —
//!   while keeping the [`Complex64`] API boundary.
//!
//! Small shapes take the direct convolution path on *every* backend
//! (same [`fft_wins`] branch), so backends differ only where the FFT
//! machinery actually runs.

use crate::backend::DspBackend;
use crate::complex::Complex64;
use crate::convolution::{convolve_into, fft_wins};
use crate::error::DspError;
use crate::fft::{next_power_of_two, Direction};
use crate::fp32::Complex32;
use crate::matched_filter::MatchedFilter;
use crate::plan::DspContext;
use crate::resample::upsample_fft_into;
use std::sync::Arc;

/// The backend-generic kernel set the detectors are written against.
///
/// All entry points write into caller-owned buffers and draw working
/// memory from the implementor's scratch arenas, so steady-state calls
/// allocate nothing. Magnitude outputs are plain `f64` regardless of
/// backend; the tolerance contract between backends is asserted by
/// `tests/backend_tolerance.rs`.
///
/// # Examples
///
/// ```
/// use uwb_dsp::{Complex64, DspBackend, DspContext, Kernels, MatchedFilter};
///
/// # fn main() -> Result<(), uwb_dsp::DspError> {
/// let filter = MatchedFilter::from_real(&[0.2, 1.0, 0.2])?;
/// let signal: Vec<Complex64> = (0..400)
///     .map(|i| Complex64::from_real((i as f64 * 0.1).sin()))
///     .collect();
/// let mut f64_ctx = DspContext::new();
/// let mut f32_ctx = DspContext::with_backend(DspBackend::F32);
/// let (mut a, mut b) = (Vec::new(), Vec::new());
/// f64_ctx.matched_filter_mags_into(&filter, &signal, &mut a)?;
/// f32_ctx.matched_filter_mags_into(&filter, &signal, &mut b)?;
/// assert!(a.iter().zip(&b).all(|(x, y)| (x - y).abs() < 1e-3));
/// # Ok(())
/// # }
/// ```
pub trait Kernels {
    /// The backend this kernel set dispatches to.
    fn backend(&self) -> DspBackend;

    /// In-place FFT of `data` in the given direction (arbitrary length;
    /// inverse is normalized by `1/N`).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty buffer.
    fn fft_into(&mut self, data: &mut [Complex64], direction: Direction) -> Result<(), DspError>;

    /// FFT zero-padding interpolation of `signal` by `factor`, written
    /// into `out` (cleared first).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty signal and
    /// [`DspError::InvalidFactor`] for `factor == 0`.
    fn upsample_into(
        &mut self,
        signal: &[Complex64],
        factor: usize,
        out: &mut Vec<Complex64>,
    ) -> Result<(), DspError>;

    /// Signal-aligned matched-filter output (complex), the backend
    /// dispatch of [`MatchedFilter::apply_into`].
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty signal.
    fn matched_filter_into(
        &mut self,
        filter: &MatchedFilter,
        signal: &[Complex64],
        out: &mut Vec<Complex64>,
    ) -> Result<(), DspError>;

    /// Signal-aligned matched-filter output *magnitudes* — the form the
    /// search-and-subtract peak scan actually consumes. Fusing the
    /// magnitude step into the kernel lets the f32 backend skip
    /// widening the complex samples it would immediately collapse.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty signal.
    fn matched_filter_mags_into(
        &mut self,
        filter: &MatchedFilter,
        signal: &[Complex64],
        mags: &mut Vec<f64>,
    ) -> Result<(), DspError>;

    /// Element magnitudes of `signal`, written into `out` (cleared
    /// first).
    fn magnitudes_into(&mut self, signal: &[Complex64], out: &mut Vec<f64>);

    /// Batched correlation scores: `out[b * templates.len() + t]` is the
    /// zero-lag correlation magnitude `|Σ_n signals[b][n] ·
    /// conj(templates[t][n])|` over the common support. This is the
    /// batched kernel behind pulse-shape classification
    /// (`detect_batch`-style workloads race it in perfwatch as
    /// `detect.batch_classify_64`).
    fn accumulate_scores(
        &mut self,
        signals: &[&[Complex64]],
        templates: &[&[Complex64]],
        out: &mut Vec<f64>,
    );
}

/// Where a matched-filter dispatch writes its result.
enum MfSink<'a> {
    Complex(&'a mut Vec<Complex64>),
    Mags(&'a mut Vec<f64>),
}

/// Overlap-save FFT length for a linear convolution of `out_len` total
/// samples with a kernel of `kernel_len` taps: the power of two that
/// minimizes the modeled transform-plus-multiply cost
/// `blocks · (B·log₂B + B)`. For long kernels this is the single
/// full-length transform; for the Fig. 7 shape (8128-sample signal,
/// 233-tap template) it picks 2048-point blocks, roughly halving the
/// butterfly work of the 16384-point transform the padded length would
/// otherwise force.
fn overlap_save_len(out_len: usize, kernel_len: usize) -> usize {
    let full = next_power_of_two(out_len);
    let produced = out_len - (kernel_len - 1);
    let mut best = full;
    let mut best_cost = u64::MAX;
    let mut b = next_power_of_two(kernel_len);
    while b <= full {
        let step = b - (kernel_len - 1);
        let blocks = produced.div_ceil(step) as u64;
        let cost = blocks * (b as u64) * (u64::from(b.trailing_zeros()) + 1);
        if cost < best_cost {
            best_cost = cost;
            best = b;
        }
        b *= 2;
    }
    best
}

impl DspContext {
    /// The cached f64 forward spectrum of `filter`'s impulse response,
    /// zero-padded to transform length `k`. Built once per
    /// `(kernel, k)` pair — through the half-cost real FFT when the
    /// template is purely real — then shared via [`Arc`]. Cache fills
    /// use the unprofiled transform paths so work counters stay
    /// invariant to how many workers warmed their caches.
    fn kernel_spectrum_f64(
        &mut self,
        filter: &MatchedFilter,
        k: usize,
    ) -> Result<Arc<Vec<Complex64>>, DspError> {
        let key = (filter.kernel_id(), k);
        if let Some(spectrum) = self.kernel_spectra.get(&key) {
            return Ok(Arc::clone(spectrum));
        }
        let mut spectrum;
        if let Some(real) = filter.reversed_real() {
            let plan = self.plans.rfft(k)?;
            let mut padded = vec![0.0f64; k];
            padded[..real.len()].copy_from_slice(real);
            spectrum = Vec::new();
            plan.forward_into_unprofiled(&padded, &mut spectrum, &mut self.scratch);
        } else {
            let plan = self.plans.radix2(k)?;
            spectrum = vec![Complex64::ZERO; k];
            spectrum[..filter.reversed().len()].copy_from_slice(filter.reversed());
            plan.transform_unprofiled(&mut spectrum, Direction::Forward);
        }
        let spectrum = Arc::new(spectrum);
        self.kernel_spectra.insert(key, Arc::clone(&spectrum));
        Ok(spectrum)
    }

    /// The single-precision twin of
    /// [`DspContext::kernel_spectrum_f64`].
    fn kernel_spectrum_f32(
        &mut self,
        filter: &MatchedFilter,
        k: usize,
    ) -> Result<Arc<Vec<Complex32>>, DspError> {
        let key = (filter.kernel_id(), k);
        if let Some(spectrum) = self.kernel_spectra32.get(&key) {
            return Ok(Arc::clone(spectrum));
        }
        let plan = self.fp32.radix2(k)?;
        let mut spectrum = vec![Complex32::ZERO; k];
        for (slot, z) in spectrum.iter_mut().zip(filter.reversed()) {
            *slot = Complex32::from_c64(*z);
        }
        plan.transform_unprofiled(&mut spectrum, Direction::Forward);
        let spectrum = Arc::new(spectrum);
        self.kernel_spectra32.insert(key, Arc::clone(&spectrum));
        Ok(spectrum)
    }

    /// Shared matched-filter dispatch: runs the convolution on the
    /// selected backend and extracts either the complex signal-aligned
    /// window or its magnitudes.
    fn mf_dispatch(
        &mut self,
        filter: &MatchedFilter,
        signal: &[Complex64],
        sink: MfSink<'_>,
    ) -> Result<(), DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput);
        }
        let kernel_len = filter.len();
        let start = kernel_len - 1;
        let backend = self.backend();

        // The scalar backend always takes the historical f64 path
        // (bit-identical contract); the others join it for small shapes
        // where the direct convolution wins anyway.
        if backend == DspBackend::ScalarF64 || !fft_wins(signal.len(), kernel_len) {
            let mut full = self.scratch.acquire();
            convolve_into(signal, filter.reversed(), &mut full, self)?;
            let window = &full[start..start + signal.len()];
            match sink {
                MfSink::Complex(out) => {
                    out.clear();
                    out.extend_from_slice(window);
                }
                MfSink::Mags(mags) => {
                    mags.clear();
                    if backend == DspBackend::ScalarF64 {
                        mags.extend(window.iter().map(|z| z.abs()));
                    } else {
                        mags.extend(window.iter().map(|z| z.norm_sqr().sqrt()));
                    }
                }
            }
            self.scratch.release(full);
            return Ok(());
        }

        // Overlap-save convolution: the cached kernel spectrum lives at
        // the cost-optimal block length, and each block pays two
        // transforms there instead of one pair at the padded full
        // length. Block `j` loads signal samples `[j·step, j·step + k)`
        // (zero-padded past the end); the circular convolution is free
        // of wraparound from index `kernel_len − 1` on, which yields
        // `step` signal-aligned outputs per block.
        let k = overlap_save_len(signal.len() + kernel_len - 1, kernel_len);
        let step = k - start;
        let mut sink = sink;
        match &mut sink {
            MfSink::Complex(out) => {
                out.clear();
                out.reserve(signal.len());
            }
            MfSink::Mags(mags) => {
                mags.clear();
                mags.reserve(signal.len());
            }
        }
        match backend {
            DspBackend::RealFft => {
                let spectrum = self.kernel_spectrum_f64(filter, k)?;
                let plan = self.plans.radix2(k)?;
                let mut buf = self.scratch.acquire();
                let mut produced = 0usize;
                while produced < signal.len() {
                    // Same per-block accounting as convolve_into's FFT
                    // path, minus the kernel transform the cache removed.
                    uwb_obs::profile::work("conv.mac", k as u64);
                    buf.clear();
                    buf.resize(k, Complex64::ZERO);
                    let seg_end = (produced + k).min(signal.len());
                    buf[..seg_end - produced].copy_from_slice(&signal[produced..seg_end]);
                    plan.forward(&mut buf);
                    for (b, s) in buf.iter_mut().zip(spectrum.iter()) {
                        *b *= *s;
                    }
                    plan.inverse(&mut buf);
                    let take = step.min(signal.len() - produced);
                    let window = &buf[start..start + take];
                    match &mut sink {
                        MfSink::Complex(out) => out.extend_from_slice(window),
                        MfSink::Mags(mags) => {
                            mags.extend(window.iter().map(|z| z.norm_sqr().sqrt()));
                        }
                    }
                    produced += take;
                }
                self.scratch.release(buf);
            }
            DspBackend::F32 => {
                let spectrum = self.kernel_spectrum_f32(filter, k)?;
                let plan = self.fp32.radix2(k)?;
                let mut buf = self.fp32.scratch.acquire();
                let mut produced = 0usize;
                while produced < signal.len() {
                    uwb_obs::profile::work("conv.mac", k as u64);
                    buf.clear();
                    buf.resize(k, Complex32::ZERO);
                    let seg_end = (produced + k).min(signal.len());
                    for (slot, z) in buf.iter_mut().zip(&signal[produced..seg_end]) {
                        *slot = Complex32::from_c64(*z);
                    }
                    plan.forward(&mut buf);
                    for (b, s) in buf.iter_mut().zip(spectrum.iter()) {
                        *b *= *s;
                    }
                    plan.inverse(&mut buf);
                    let take = step.min(signal.len() - produced);
                    let window = &buf[start..start + take];
                    match &mut sink {
                        MfSink::Complex(out) => {
                            out.extend(window.iter().map(|z| z.to_c64()));
                        }
                        MfSink::Mags(mags) => {
                            mags.extend(window.iter().map(|z| f64::from(z.norm_sqr()).sqrt()));
                        }
                    }
                    produced += take;
                }
                self.fp32.scratch.release(buf);
            }
            DspBackend::ScalarF64 => unreachable!("scalar handled above"),
        }
        Ok(())
    }
}

impl Kernels for DspContext {
    fn backend(&self) -> DspBackend {
        DspContext::backend(self)
    }

    fn fft_into(&mut self, data: &mut [Complex64], direction: Direction) -> Result<(), DspError> {
        match self.backend() {
            DspBackend::ScalarF64 | DspBackend::RealFft => {
                let plan = self.plans.bluestein(data.len())?;
                plan.transform_with(data, direction, &mut self.scratch);
                Ok(())
            }
            DspBackend::F32 => {
                let plan = self.fp32.bluestein(data.len())?;
                let mut buf = self.fp32.scratch.acquire();
                buf.extend(data.iter().map(|&z| Complex32::from_c64(z)));
                plan.transform_with(&mut buf, direction, &mut self.fp32.scratch);
                for (d, s) in data.iter_mut().zip(&buf) {
                    *d = s.to_c64();
                }
                self.fp32.scratch.release(buf);
                Ok(())
            }
        }
    }

    fn upsample_into(
        &mut self,
        signal: &[Complex64],
        factor: usize,
        out: &mut Vec<Complex64>,
    ) -> Result<(), DspError> {
        match self.backend() {
            DspBackend::ScalarF64 | DspBackend::RealFft => {
                upsample_fft_into(signal, factor, out, self)
            }
            DspBackend::F32 => self.fp32.upsample_into(signal, factor, out),
        }
    }

    fn matched_filter_into(
        &mut self,
        filter: &MatchedFilter,
        signal: &[Complex64],
        out: &mut Vec<Complex64>,
    ) -> Result<(), DspError> {
        self.mf_dispatch(filter, signal, MfSink::Complex(out))
    }

    fn matched_filter_mags_into(
        &mut self,
        filter: &MatchedFilter,
        signal: &[Complex64],
        mags: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        self.mf_dispatch(filter, signal, MfSink::Mags(mags))
    }

    fn magnitudes_into(&mut self, signal: &[Complex64], out: &mut Vec<f64>) {
        out.clear();
        match self.backend() {
            // Historical path: hypot-based |z| (bit-identical default).
            DspBackend::ScalarF64 => out.extend(signal.iter().map(|z| z.abs())),
            DspBackend::RealFft => out.extend(signal.iter().map(|z| z.norm_sqr().sqrt())),
            DspBackend::F32 => out.extend(
                signal
                    .iter()
                    .map(|z| f64::from(Complex32::from_c64(*z).norm_sqr()).sqrt()),
            ),
        }
    }

    fn accumulate_scores(
        &mut self,
        signals: &[&[Complex64]],
        templates: &[&[Complex64]],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(signals.len() * templates.len());
        let backend = self.backend();
        let mut macs = 0u64;
        for signal in signals {
            for template in templates {
                let n = signal.len().min(template.len());
                macs += n as u64;
                let score = match backend {
                    DspBackend::F32 => {
                        let mut re = 0.0f32;
                        let mut im = 0.0f32;
                        for (s, t) in signal[..n].iter().zip(&template[..n]) {
                            let s = Complex32::from_c64(*s);
                            let t = Complex32::from_c64(*t);
                            re += s.re * t.re + s.im * t.im;
                            im += s.im * t.re - s.re * t.im;
                        }
                        f64::from(re * re + im * im).sqrt()
                    }
                    _ => {
                        let mut acc = Complex64::ZERO;
                        for (s, t) in signal[..n].iter().zip(&template[..n]) {
                            acc += *s * t.conj();
                        }
                        match backend {
                            DspBackend::ScalarF64 => acc.abs(),
                            _ => acc.norm_sqr().sqrt(),
                        }
                    }
                };
                out.push(score);
            }
        }
        uwb_obs::profile::work("score.mac", macs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resample::upsample_fft;

    fn synth_signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.13).cos()))
            .collect()
    }

    fn fig7_like_filter() -> MatchedFilter {
        let template: Vec<f64> = (0..64)
            .map(|i| {
                let t = (i as f64 - 32.0) / 8.0;
                (-t * t).exp()
            })
            .collect();
        MatchedFilter::from_real(&template).unwrap()
    }

    #[test]
    fn scalar_backend_is_bit_identical_to_apply_into() {
        let filter = fig7_like_filter();
        let signal = synth_signal(2000);
        let mut reference_ctx = DspContext::new();
        let mut reference = Vec::new();
        filter
            .apply_into(&signal, &mut reference, &mut reference_ctx)
            .unwrap();

        let mut ctx = DspContext::new();
        let mut out = Vec::new();
        ctx.matched_filter_into(&filter, &signal, &mut out).unwrap();
        assert_eq!(out, reference);

        let mut mags = Vec::new();
        ctx.matched_filter_mags_into(&filter, &signal, &mut mags)
            .unwrap();
        let expected: Vec<f64> = reference.iter().map(|z| z.abs()).collect();
        assert_eq!(mags, expected, "mags must match the historical |z| path");
    }

    #[test]
    fn rfft_backend_matches_scalar_within_f64_tolerance() {
        let filter = fig7_like_filter();
        // Fig. 7 scale (1016 taps × 8 upsampling) — large enough that
        // fft_wins picks the FFT path and the spectrum cache engages.
        let signal = synth_signal(8128);
        let mut scalar = DspContext::new();
        let mut rfft = DspContext::with_backend(DspBackend::RealFft);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        scalar
            .matched_filter_mags_into(&filter, &signal, &mut a)
            .unwrap();
        rfft.matched_filter_mags_into(&filter, &signal, &mut b)
            .unwrap();
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!((x - y).abs() < 1e-9, "sample {i}: {x} vs {y}");
        }
        assert_eq!(
            rfft.kernel_spectra.len(),
            1,
            "kernel spectrum must be cached"
        );
        // Second call hits the cache — same result.
        let mut c = Vec::new();
        rfft.matched_filter_mags_into(&filter, &signal, &mut c)
            .unwrap();
        assert_eq!(b, c);
        assert_eq!(rfft.kernel_spectra.len(), 1);
    }

    #[test]
    fn f32_backend_matches_scalar_within_f32_tolerance() {
        let filter = fig7_like_filter();
        let signal = synth_signal(8128);
        let mut scalar = DspContext::new();
        let mut f32_ctx = DspContext::with_backend(DspBackend::F32);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        scalar
            .matched_filter_mags_into(&filter, &signal, &mut a)
            .unwrap();
        f32_ctx
            .matched_filter_mags_into(&filter, &signal, &mut b)
            .unwrap();
        let peak = a.iter().cloned().fold(0.0f64, f64::max);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            // Relative to the peak: f32 rounding through two 4096-point
            // transforms stays far below any detection threshold.
            assert!((x - y).abs() < 1e-3 * peak, "sample {i}: {x} vs {y}");
        }
    }

    #[test]
    fn small_shapes_take_the_direct_path_on_every_backend() {
        let filter = MatchedFilter::from_real(&[0.2, 1.0, 0.2]).unwrap();
        let signal = synth_signal(64);
        let mut reference = Vec::new();
        let mut ctx = DspContext::new();
        ctx.matched_filter_mags_into(&filter, &signal, &mut reference)
            .unwrap();
        for backend in [DspBackend::RealFft, DspBackend::F32] {
            let mut ctx = DspContext::with_backend(backend);
            let mut out = Vec::new();
            ctx.matched_filter_mags_into(&filter, &signal, &mut out)
                .unwrap();
            for (x, y) in reference.iter().zip(&out) {
                assert!((x - y).abs() < 1e-12, "{backend}: {x} vs {y}");
            }
            assert!(
                ctx.kernel_spectra.is_empty() && ctx.kernel_spectra32.is_empty(),
                "{backend}: direct path must not build kernel spectra"
            );
        }
    }

    #[test]
    fn upsample_dispatches_per_backend() {
        let signal = synth_signal(254);
        let reference = upsample_fft(&signal, 8).unwrap();
        for backend in DspBackend::ALL {
            let mut ctx = DspContext::with_backend(backend);
            let mut out = Vec::new();
            ctx.upsample_into(&signal, 8, &mut out).unwrap();
            assert_eq!(out.len(), reference.len());
            let tol = match backend {
                DspBackend::F32 => 5e-4 * signal.len() as f64,
                _ => 0.0,
            };
            for (i, (x, y)) in out.iter().zip(&reference).enumerate() {
                if tol == 0.0 {
                    assert_eq!(*x, *y, "{backend}: sample {i} must be bit-identical");
                } else {
                    assert!((*x - *y).abs() < tol, "{backend}: sample {i}");
                }
            }
        }
    }

    #[test]
    fn fft_into_matches_the_planned_path_per_backend() {
        let signal = synth_signal(127);
        let mut reference = signal.clone();
        crate::fft::fft(&mut reference).ok();
        // 127 is not a power of two — exercise Bluestein on each backend.
        let mut planned = signal.clone();
        let mut ctx = DspContext::new();
        let plan = ctx.plans.bluestein(127).unwrap();
        plan.transform_with(&mut planned, Direction::Forward, &mut ctx.scratch);
        for backend in DspBackend::ALL {
            let mut ctx = DspContext::with_backend(backend);
            let mut data = signal.clone();
            ctx.fft_into(&mut data, Direction::Forward).unwrap();
            let tol = match backend {
                DspBackend::F32 => 2e-4 * signal.len() as f64,
                _ => 0.0,
            };
            for (i, (x, y)) in data.iter().zip(&planned).enumerate() {
                if tol == 0.0 {
                    assert_eq!(*x, *y, "{backend}: bin {i}");
                } else {
                    assert!((*x - *y).abs() < tol, "{backend}: bin {i}: {x} vs {y}");
                }
            }
        }
        let mut ctx = DspContext::new();
        assert!(matches!(
            ctx.fft_into(&mut [], Direction::Forward),
            Err(DspError::EmptyInput)
        ));
    }

    #[test]
    fn accumulate_scores_matches_naive_correlation() {
        let signals: Vec<Vec<Complex64>> = (0..3).map(|i| synth_signal(40 + i)).collect();
        let templates: Vec<Vec<Complex64>> = (0..2).map(|i| synth_signal(38 + 2 * i)).collect();
        let signal_refs: Vec<&[Complex64]> = signals.iter().map(Vec::as_slice).collect();
        let template_refs: Vec<&[Complex64]> = templates.iter().map(Vec::as_slice).collect();
        let mut ctx = DspContext::new();
        let mut out = Vec::new();
        ctx.accumulate_scores(&signal_refs, &template_refs, &mut out);
        assert_eq!(out.len(), signals.len() * templates.len());
        for (b, signal) in signals.iter().enumerate() {
            for (t, template) in templates.iter().enumerate() {
                let n = signal.len().min(template.len());
                let mut acc = Complex64::ZERO;
                for i in 0..n {
                    acc += signal[i] * template[i].conj();
                }
                let got = out[b * templates.len() + t];
                assert!((got - acc.abs()).abs() < 1e-12, "({b},{t})");
            }
        }
        // The f32 backend agrees within single-precision tolerance.
        let mut ctx32 = DspContext::with_backend(DspBackend::F32);
        let mut out32 = Vec::new();
        ctx32.accumulate_scores(&signal_refs, &template_refs, &mut out32);
        for (x, y) in out.iter().zip(&out32) {
            assert!((x - y).abs() < 1e-3 * x.abs().max(1.0));
        }
    }

    #[test]
    fn magnitudes_match_across_backends() {
        let signal = synth_signal(100);
        let mut reference = Vec::new();
        DspContext::new().magnitudes_into(&signal, &mut reference);
        assert_eq!(reference.len(), signal.len());
        for backend in [DspBackend::RealFft, DspBackend::F32] {
            let mut out = Vec::new();
            DspContext::with_backend(backend).magnitudes_into(&signal, &mut out);
            for (x, y) in reference.iter().zip(&out) {
                assert!((x - y).abs() < 1e-6, "{backend}");
            }
        }
    }
}
