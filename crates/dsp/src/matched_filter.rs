//! Matched filtering against a pulse template.
//!
//! Implements the filter used by the paper's search-and-subtract detector
//! (Sect. IV): the filter impulse response is the time-reversed (conjugated)
//! pulse template `h_MF = [s((Np-1)·Ts), …, s(0)]` and the output is the
//! discrete convolution `y = h_MF * r` (Eq. 3). The output is returned in a
//! *signal-aligned* form: `y[k]` is the correlation of the template placed so
//! that its first sample coincides with signal sample `k`, which makes peak
//! indices directly interpretable as template start positions.

use crate::complex::Complex64;
use crate::convolution::{convolve, convolve_into};
use crate::error::DspError;
use crate::plan::DspContext;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic source of [`MatchedFilter::kernel_id`] values. Clones keep
/// their source's id (same template content → same cached spectra).
static NEXT_KERNEL_ID: AtomicU64 = AtomicU64::new(0);

/// A matched filter for a fixed template.
///
/// # Examples
///
/// ```
/// use uwb_dsp::{Complex64, MatchedFilter};
/// # fn main() -> Result<(), uwb_dsp::DspError> {
/// let template: Vec<Complex64> =
///     [0.2, 1.0, 0.2].iter().map(|&x| Complex64::from_real(x)).collect();
/// let filter = MatchedFilter::new(&template)?;
/// let mut signal = vec![Complex64::ZERO; 16];
/// signal[5] = Complex64::from_real(0.2);
/// signal[6] = Complex64::from_real(1.0);
/// signal[7] = Complex64::from_real(0.2);
/// let output = filter.apply(&signal)?;
/// let peak = output
///     .iter()
///     .enumerate()
///     .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
///     .map(|(i, _)| i);
/// assert_eq!(peak, Some(5)); // template starts at sample 5
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MatchedFilter {
    /// The stored template `s`.
    template: Vec<Complex64>,
    /// Precomputed impulse response `h_MF`: the time-reversed conjugate
    /// of `s`, built once at construction so `apply` does not rebuild it
    /// per call.
    reversed: Vec<Complex64>,
    /// The real parts of `reversed` when the template is purely real
    /// (always the case for the pulse-shape templates, which are sampled
    /// real pulses) — lets the real-FFT backend build kernel spectra at
    /// half cost.
    reversed_real: Option<Vec<f64>>,
    /// Template energy `Σ|s|²`, used for normalized output.
    energy: f64,
    /// Process-unique identity for kernel-spectrum caching in
    /// [`DspContext`].
    kernel_id: u64,
}

impl MatchedFilter {
    /// Builds a matched filter from a pulse template.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty template.
    pub fn new(template: &[Complex64]) -> Result<Self, DspError> {
        if template.is_empty() {
            return Err(DspError::EmptyInput);
        }
        let energy = template.iter().map(|z| z.norm_sqr()).sum();
        let reversed: Vec<Complex64> = template.iter().rev().map(|z| z.conj()).collect();
        let reversed_real = if template.iter().all(|z| z.im == 0.0) {
            Some(reversed.iter().map(|z| z.re).collect())
        } else {
            None
        };
        Ok(Self {
            template: template.to_vec(),
            reversed,
            reversed_real,
            energy,
            kernel_id: NEXT_KERNEL_ID.fetch_add(1, Ordering::Relaxed),
        })
    }

    /// Builds a matched filter from a real-valued template.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty template.
    pub fn from_real(template: &[f64]) -> Result<Self, DspError> {
        let t: Vec<Complex64> = template.iter().map(|&x| Complex64::from_real(x)).collect();
        Self::new(&t)
    }

    /// The stored template.
    pub fn template(&self) -> &[Complex64] {
        &self.template
    }

    /// Template length in samples (`Np`).
    pub fn len(&self) -> usize {
        self.template.len()
    }

    /// Returns `true` if the template is empty (never the case for a
    /// constructed filter; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.template.is_empty()
    }

    /// Template energy `Σ|s[n]|²`.
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// The precomputed impulse response `h_MF` (time-reversed conjugate
    /// of the template) — what the backend kernels convolve with.
    pub fn reversed(&self) -> &[Complex64] {
        &self.reversed
    }

    /// The impulse response as plain reals when the template is purely
    /// real; `None` for genuinely complex templates.
    pub fn reversed_real(&self) -> Option<&[f64]> {
        self.reversed_real.as_deref()
    }

    /// Process-unique identity of this filter's kernel, used to key the
    /// spectrum caches in [`DspContext`]. Clones share the id (and
    /// therefore the cached spectra), which is sound because a clone's
    /// template content is identical.
    pub fn kernel_id(&self) -> u64 {
        self.kernel_id
    }

    /// Applies the filter and returns the signal-aligned output.
    ///
    /// `output[k] = Σ_n signal[k+n] · conj(template[n])`; output length
    /// equals the signal length (positions where the template would extend
    /// past the end are still computed with implicit zero padding and then
    /// truncated to the signal's support).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty signal.
    pub fn apply(&self, signal: &[Complex64]) -> Result<Vec<Complex64>, DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput);
        }
        // Convolve with the time-reversed conjugate template, then shift so
        // index k corresponds to the template *starting* at sample k.
        let full = convolve(signal, &self.reversed)?;
        let start = self.template.len() - 1;
        Ok(full[start..start + signal.len()].to_vec())
    }

    /// Planned variant of [`MatchedFilter::apply`]: writes the
    /// signal-aligned output into `out`, drawing plans and working
    /// buffers from `ctx`. Bit-identical to `apply`; in steady state the
    /// call allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty signal.
    pub fn apply_into(
        &self,
        signal: &[Complex64],
        out: &mut Vec<Complex64>,
        ctx: &mut DspContext,
    ) -> Result<(), DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput);
        }
        let mut full = ctx.scratch.acquire();
        convolve_into(signal, &self.reversed, &mut full, ctx)?;
        let start = self.template.len() - 1;
        out.clear();
        out.extend_from_slice(&full[start..start + signal.len()]);
        ctx.scratch.release(full);
        Ok(())
    }

    /// Planned variant of [`MatchedFilter::apply_normalized`]: writes
    /// energy-normalized magnitudes into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty signal.
    pub fn apply_normalized_into(
        &self,
        signal: &[Complex64],
        out: &mut Vec<f64>,
        ctx: &mut DspContext,
    ) -> Result<(), DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput);
        }
        let mut full = ctx.scratch.acquire();
        convolve_into(signal, &self.reversed, &mut full, ctx)?;
        let start = self.template.len() - 1;
        let scale = 1.0 / self.energy;
        out.clear();
        out.extend(
            full[start..start + signal.len()]
                .iter()
                .map(|z| z.abs() * scale),
        );
        ctx.scratch.release(full);
        Ok(())
    }

    /// Applies the filter and returns output magnitudes, normalized by the
    /// template energy so a perfectly matching unit-amplitude pulse yields
    /// a peak of 1.0.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty signal.
    pub fn apply_normalized(&self, signal: &[Complex64]) -> Result<Vec<f64>, DspError> {
        let out = self.apply(signal)?;
        let scale = 1.0 / self.energy;
        Ok(out.iter().map(|z| z.abs() * scale).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(values: &[f64]) -> Vec<Complex64> {
        values.iter().map(|&x| Complex64::from_real(x)).collect()
    }

    fn peak_index(out: &[Complex64]) -> usize {
        out.iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap()
            .0
    }

    #[test]
    fn empty_template_rejected() {
        assert!(matches!(MatchedFilter::new(&[]), Err(DspError::EmptyInput)));
    }

    #[test]
    fn empty_signal_rejected() {
        let f = MatchedFilter::from_real(&[1.0]).unwrap();
        assert!(matches!(f.apply(&[]), Err(DspError::EmptyInput)));
    }

    #[test]
    fn output_length_matches_signal() {
        let f = MatchedFilter::from_real(&[1.0, 2.0, 1.0]).unwrap();
        let signal = c(&[0.0; 40]);
        assert_eq!(f.apply(&signal).unwrap().len(), 40);
    }

    #[test]
    fn peak_at_template_start_position() {
        let template = [0.1, 0.6, 1.0, 0.6, 0.1];
        let f = MatchedFilter::from_real(&template).unwrap();
        for offset in [0usize, 3, 10, 27] {
            let mut signal = vec![Complex64::ZERO; 40];
            for (i, &t) in template.iter().enumerate() {
                signal[offset + i] = Complex64::from_real(t * 2.5);
            }
            let out = f.apply(&signal).unwrap();
            assert_eq!(peak_index(&out), offset, "offset {offset}");
        }
    }

    #[test]
    fn peak_amplitude_scales_with_signal_amplitude() {
        let template = [0.3, 1.0, 0.3];
        let f = MatchedFilter::from_real(&template).unwrap();
        let mut s1 = vec![Complex64::ZERO; 16];
        let mut s2 = vec![Complex64::ZERO; 16];
        for (i, &t) in template.iter().enumerate() {
            s1[4 + i] = Complex64::from_real(t);
            s2[4 + i] = Complex64::from_real(3.0 * t);
        }
        let p1 = f.apply(&s1).unwrap()[4].abs();
        let p2 = f.apply(&s2).unwrap()[4].abs();
        assert!((p2 / p1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn normalized_peak_is_unity_for_exact_match() {
        let template = [0.2, 0.9, 1.0, 0.4];
        let f = MatchedFilter::from_real(&template).unwrap();
        let mut signal = vec![Complex64::ZERO; 20];
        for (i, &t) in template.iter().enumerate() {
            signal[7 + i] = Complex64::from_real(t);
        }
        let out = f.apply_normalized(&signal).unwrap();
        assert!((out[7] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mismatched_template_scores_lower_than_matching_one() {
        // Cauchy–Schwarz: among unit-energy templates, the correct one
        // maximizes the matched-filter response. This is the property the
        // paper's pulse-shape identification relies on.
        let narrow = [0.05, 0.8, 1.0, 0.8, 0.05];
        let wide = [0.4, 0.8, 1.0, 0.8, 0.4];
        let unit = |t: &[f64]| {
            let e: f64 = t.iter().map(|x| x * x).sum::<f64>().sqrt();
            t.iter().map(|x| x / e).collect::<Vec<_>>()
        };
        let narrow_u = unit(&narrow);
        let wide_u = unit(&wide);

        let mut signal = vec![Complex64::ZERO; 30];
        for (i, &t) in narrow_u.iter().enumerate() {
            signal[10 + i] = Complex64::from_real(t);
        }
        let f_narrow = MatchedFilter::from_real(&narrow_u).unwrap();
        let f_wide = MatchedFilter::from_real(&wide_u).unwrap();
        let score_narrow = f_narrow.apply(&signal).unwrap()[10].abs();
        let score_wide = f_wide.apply(&signal).unwrap()[10].abs();
        assert!(
            score_narrow > score_wide,
            "matching template must win: {score_narrow} vs {score_wide}"
        );
    }

    #[test]
    fn apply_into_matches_apply_bitwise() {
        let template = [0.1, 0.6, 1.0, 0.6, 0.1];
        let f = MatchedFilter::from_real(&template).unwrap();
        let signal: Vec<Complex64> = (0..200)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.13).cos()))
            .collect();
        let reference = f.apply(&signal).unwrap();
        let norm_reference = f.apply_normalized(&signal).unwrap();

        let mut ctx = DspContext::new();
        let mut out = Vec::new();
        let mut norm_out = Vec::new();
        for pass in 0..2 {
            f.apply_into(&signal, &mut out, &mut ctx).unwrap();
            assert_eq!(out, reference, "pass {pass}");
            f.apply_normalized_into(&signal, &mut norm_out, &mut ctx)
                .unwrap();
            assert_eq!(norm_out, norm_reference, "pass {pass}");
        }
        assert!(matches!(
            f.apply_into(&[], &mut out, &mut ctx),
            Err(DspError::EmptyInput)
        ));
        assert!(matches!(
            f.apply_normalized_into(&[], &mut norm_out, &mut ctx),
            Err(DspError::EmptyInput)
        ));
    }

    #[test]
    fn complex_phase_is_recovered() {
        let template = c(&[1.0, 1.0]);
        let f = MatchedFilter::new(&template).unwrap();
        let signal = vec![Complex64::I, Complex64::I, Complex64::ZERO];
        let out = f.apply(&signal).unwrap();
        // Correlation of i·template with template = 2i.
        assert!((out[0] - Complex64::new(0.0, 2.0)).abs() < 1e-12);
    }
}
