//! Radix-2 fast Fourier transform.
//!
//! The module provides an in-place, iterative Cooley–Tukey FFT for
//! power-of-two lengths plus a [`FftPlan`] that caches twiddle factors for
//! repeated transforms of the same size (the dominant use case when
//! processing a stream of fixed-length CIR buffers).
//!
//! Arbitrary (non-power-of-two) lengths are handled by the
//! [`bluestein`](crate::bluestein) module, which builds on this one.
//!
//! # Conventions
//!
//! The forward transform computes `X[k] = Σ_n x[n]·e^{-2πi·kn/N}` and the
//! inverse transform includes the `1/N` normalization, so
//! `inverse(forward(x)) == x` up to floating-point error.

use crate::complex::Complex64;
use crate::error::DspError;
use std::f64::consts::PI;

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Time domain to frequency domain (negative exponent).
    Forward,
    /// Frequency domain to time domain (positive exponent, normalized by 1/N).
    Inverse,
}

/// A reusable FFT plan for a fixed power-of-two size.
///
/// Precomputes the bit-reversal permutation and twiddle factors once, so
/// repeated transforms avoid redundant trigonometry.
///
/// # Examples
///
/// ```
/// use uwb_dsp::{Complex64, FftPlan};
///
/// # fn main() -> Result<(), uwb_dsp::DspError> {
/// let plan = FftPlan::new(8)?;
/// let mut data = vec![Complex64::ONE; 8];
/// plan.forward(&mut data);
/// // The DFT of a constant is an impulse at bin zero.
/// assert!((data[0].re - 8.0).abs() < 1e-12);
/// assert!(data[1..].iter().all(|z| z.abs() < 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    size: usize,
    /// Bit-reversed index for each position.
    reversed: Vec<u32>,
    /// Twiddles `e^{-2πi·k/N}` for `k in 0..N/2` (forward direction).
    twiddles: Vec<Complex64>,
}

impl FftPlan {
    /// Creates a plan for transforms of length `size`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::NotPowerOfTwo`] unless `size` is a power of two
    /// and at least 1.
    pub fn new(size: usize) -> Result<Self, DspError> {
        if size == 0 || !size.is_power_of_two() {
            return Err(DspError::NotPowerOfTwo { size });
        }
        let bits = size.trailing_zeros();
        let reversed = (0..size as u32)
            .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
            .map(|i| if size == 1 { 0 } else { i })
            .collect();
        let twiddles = (0..size / 2)
            .map(|k| Complex64::cis(-2.0 * PI * k as f64 / size as f64))
            .collect();
        Ok(Self {
            size,
            reversed,
            twiddles,
        })
    }

    /// The transform length this plan was built for.
    pub fn size(&self) -> usize {
        self.size
    }

    /// In-place forward FFT.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from [`FftPlan::size`].
    pub fn forward(&self, data: &mut [Complex64]) {
        self.transform(data, Direction::Forward);
    }

    /// In-place inverse FFT (normalized by `1/N`).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from [`FftPlan::size`].
    pub fn inverse(&self, data: &mut [Complex64]) {
        self.transform(data, Direction::Inverse);
    }

    /// In-place transform in the given direction.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from [`FftPlan::size`].
    pub fn transform(&self, data: &mut [Complex64], direction: Direction) {
        // A radix-2 FFT of length N executes exactly (N/2)·log₂N
        // butterflies; counted analytically, once per call, so the
        // disabled-profiler path stays one relaxed atomic load.
        uwb_obs::profile::work(
            "fft.butterfly",
            (self.size as u64 / 2) * u64::from(self.size.trailing_zeros()),
        );
        self.transform_unprofiled(data, direction);
    }

    /// The transform core without work accounting. Plan *construction*
    /// (the Bluestein kernel FFT) goes through here so counted work
    /// reflects only per-call execution and stays invariant to how many
    /// workers populated their plan caches.
    pub(crate) fn transform_unprofiled(&self, data: &mut [Complex64], direction: Direction) {
        assert_eq!(
            data.len(),
            self.size,
            "FFT plan size {} does not match buffer length {}",
            self.size,
            data.len()
        );
        let n = self.size;
        if n == 1 {
            return;
        }

        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.reversed[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }

        // Iterative butterflies.
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let step = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let mut w = self.twiddles[k * step];
                    if direction == Direction::Inverse {
                        w = w.conj();
                    }
                    let a = data[start + k];
                    let b = data[start + k + half] * w;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            len <<= 1;
        }

        if direction == Direction::Inverse {
            let scale = 1.0 / n as f64;
            for z in data.iter_mut() {
                *z = z.scale(scale);
            }
        }
    }
}

/// Convenience one-shot forward FFT for power-of-two slices.
///
/// Prefer [`FftPlan`] when transforming many buffers of the same size.
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] for invalid lengths.
pub fn fft(data: &mut [Complex64]) -> Result<(), DspError> {
    FftPlan::new(data.len()).map(|plan| plan.forward(data))
}

/// Convenience one-shot inverse FFT for power-of-two slices.
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] for invalid lengths.
pub fn ifft(data: &mut [Complex64]) -> Result<(), DspError> {
    FftPlan::new(data.len()).map(|plan| plan.inverse(data))
}

/// Naive `O(N²)` DFT used as a reference implementation in tests and for
/// very small sizes where setup cost dominates.
pub fn dft_reference(input: &[Complex64], direction: Direction) -> Vec<Complex64> {
    let n = input.len();
    let sign = match direction {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![Complex64::ZERO; n];
    for (k, slot) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (i, &x) in input.iter().enumerate() {
            acc += x * Complex64::cis(sign * 2.0 * PI * (k * i % n) as f64 / n as f64);
        }
        if direction == Direction::Inverse {
            acc = acc.scale(1.0 / n as f64);
        }
        *slot = acc;
    }
    out
}

/// Returns the smallest power of two `>= n`.
///
/// # Examples
///
/// ```
/// assert_eq!(uwb_dsp::next_power_of_two(1000), 1024);
/// assert_eq!(uwb_dsp::next_power_of_two(1024), 1024);
/// ```
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (*x - *y).abs() < tol,
                "mismatch at {i}: {x} vs {y} (tol {tol})"
            );
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(
            FftPlan::new(12),
            Err(DspError::NotPowerOfTwo { size: 12 })
        ));
        assert!(matches!(
            FftPlan::new(0),
            Err(DspError::NotPowerOfTwo { size: 0 })
        ));
    }

    #[test]
    fn size_one_is_identity() {
        let plan = FftPlan::new(1).unwrap();
        let mut data = [Complex64::new(3.0, -1.0)];
        plan.forward(&mut data);
        assert_eq!(data[0], Complex64::new(3.0, -1.0));
        plan.inverse(&mut data);
        assert_eq!(data[0], Complex64::new(3.0, -1.0));
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let plan = FftPlan::new(16).unwrap();
        let mut data = vec![Complex64::ZERO; 16];
        data[0] = Complex64::ONE;
        plan.forward(&mut data);
        for z in &data {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn shifted_impulse_has_linear_phase() {
        let n = 32;
        let plan = FftPlan::new(n).unwrap();
        let mut data = vec![Complex64::ZERO; n];
        data[3] = Complex64::ONE;
        plan.forward(&mut data);
        for (k, z) in data.iter().enumerate() {
            let expected = Complex64::cis(-2.0 * PI * 3.0 * k as f64 / n as f64);
            assert!((*z - expected).abs() < 1e-10);
        }
    }

    #[test]
    fn matches_reference_dft() {
        for &n in &[2usize, 4, 8, 64, 256] {
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 1.71).cos()))
                .collect();
            let expected = dft_reference(&input, Direction::Forward);
            let mut actual = input.clone();
            fft(&mut actual).unwrap();
            assert_close(&actual, &expected, 1e-9 * n as f64);
        }
    }

    #[test]
    fn roundtrip_recovers_input() {
        let n = 128;
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let mut data = input.clone();
        fft(&mut data).unwrap();
        ifft(&mut data).unwrap();
        assert_close(&data, &input, 1e-10);
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 64;
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.9).cos(), 0.1 * i as f64))
            .collect();
        let time_energy: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let mut freq = input.clone();
        fft(&mut freq).unwrap();
        let freq_energy: f64 = freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }

    #[test]
    fn transform_is_linear() {
        let n = 64;
        let a: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let b: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(0.0, (i as f64 * 0.2).sin()))
            .collect();
        let alpha = Complex64::new(2.0, -0.5);

        let mut lhs: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| alpha * x + y).collect();
        fft(&mut lhs).unwrap();

        let mut fa = a.clone();
        fft(&mut fa).unwrap();
        let mut fb = b.clone();
        fft(&mut fb).unwrap();
        let rhs: Vec<Complex64> = fa.iter().zip(&fb).map(|(&x, &y)| alpha * x + y).collect();

        assert_close(&lhs, &rhs, 1e-8);
    }

    #[test]
    fn plan_panics_on_wrong_length() {
        let plan = FftPlan::new(8).unwrap();
        let mut data = vec![Complex64::ZERO; 4];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.forward(&mut data);
        }));
        assert!(result.is_err());
    }
}
