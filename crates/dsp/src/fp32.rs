//! Single-precision (f32) kernel set for the [`crate::DspBackend::F32`]
//! backend.
//!
//! The DW1000 accumulator digitizes 16-bit I/Q samples and every paper
//! scenario adds receiver noise orders of magnitude above f32 rounding
//! (≈2⁻²⁴ relative), so the hot transforms can run in single precision:
//! half the memory traffic through the 16384-point convolution FFTs
//! that dominate a detection. The public API boundary stays
//! [`Complex64`] — conversion happens at the edges, and the analytic
//! stages (template subtraction, amplitude projection, sub-sample
//! interpolation) remain f64.
//!
//! The kernels mirror their f64 counterparts operation for operation,
//! including the deterministic work counters (`fft.butterfly`,
//! `bluestein.cmul`) — a backend changes *precision*, never the counted
//! work shape, except where an algorithm change (cached kernel spectra)
//! legitimately removes work.

use crate::complex::Complex64;
use crate::error::DspError;
use crate::fft::{next_power_of_two, Direction};
use std::collections::HashMap;
use std::f64::consts::PI;
use std::sync::Arc;

/// Minimal single-precision complex number for the f32 kernel set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex32 {
    /// Additive identity.
    pub const ZERO: Complex32 = Complex32 { re: 0.0, im: 0.0 };

    /// Builds a value from parts.
    #[must_use]
    pub fn new(re: f32, im: f32) -> Self {
        Self { re, im }
    }

    /// `e^{iθ}` with the angle computed in f64 for accurate twiddles.
    #[must_use]
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos() as f32,
            im: theta.sin() as f32,
        }
    }

    /// Narrows a double-precision value.
    #[must_use]
    pub fn from_c64(z: Complex64) -> Self {
        Self {
            re: z.re as f32,
            im: z.im as f32,
        }
    }

    /// Widens back to double precision.
    #[must_use]
    pub fn to_c64(self) -> Complex64 {
        Complex64::new(f64::from(self.re), f64::from(self.im))
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplication by a real scalar.
    #[must_use]
    pub fn scale(self, s: f32) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// `re² + im²`.
    #[must_use]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }
}

impl std::ops::Add for Complex32 {
    type Output = Complex32;
    fn add(self, rhs: Complex32) -> Complex32 {
        Complex32::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex32 {
    type Output = Complex32;
    fn sub(self, rhs: Complex32) -> Complex32 {
        Complex32::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex32 {
    type Output = Complex32;
    fn mul(self, rhs: Complex32) -> Complex32 {
        Complex32::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl std::ops::AddAssign for Complex32 {
    fn add_assign(&mut self, rhs: Complex32) {
        *self = *self + rhs;
    }
}

impl std::ops::MulAssign for Complex32 {
    fn mul_assign(&mut self, rhs: Complex32) {
        *self = *self * rhs;
    }
}

/// Radix-2 FFT plan in single precision — the same iterative
/// Cooley–Tukey structure as [`crate::FftPlan`].
#[derive(Debug, Clone)]
pub struct FftPlan32 {
    size: usize,
    reversed: Vec<u32>,
    twiddles: Vec<Complex32>,
}

impl FftPlan32 {
    /// Creates a plan for transforms of length `size`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::NotPowerOfTwo`] unless `size` is a power of
    /// two and at least 1.
    pub fn new(size: usize) -> Result<Self, DspError> {
        if size == 0 || !size.is_power_of_two() {
            return Err(DspError::NotPowerOfTwo { size });
        }
        let bits = size.trailing_zeros();
        let reversed = (0..size as u32)
            .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
            .map(|i| if size == 1 { 0 } else { i })
            .collect();
        let twiddles = (0..size / 2)
            .map(|k| Complex32::cis(-2.0 * PI * k as f64 / size as f64))
            .collect();
        Ok(Self {
            size,
            reversed,
            twiddles,
        })
    }

    /// The transform length this plan was built for.
    pub fn size(&self) -> usize {
        self.size
    }

    /// In-place forward FFT.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from [`FftPlan32::size`].
    pub fn forward(&self, data: &mut [Complex32]) {
        self.transform(data, Direction::Forward);
    }

    /// In-place inverse FFT (normalized by `1/N`).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from [`FftPlan32::size`].
    pub fn inverse(&self, data: &mut [Complex32]) {
        self.transform(data, Direction::Inverse);
    }

    /// In-place transform in the given direction. Counts the same
    /// `fft.butterfly` work as the f64 plan — precision does not change
    /// the operation count.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from [`FftPlan32::size`].
    pub fn transform(&self, data: &mut [Complex32], direction: Direction) {
        uwb_obs::profile::work(
            "fft.butterfly",
            (self.size as u64 / 2) * u64::from(self.size.trailing_zeros()),
        );
        self.transform_unprofiled(data, direction);
    }

    /// The transform core without work accounting (plan construction and
    /// one-time cache fills).
    pub(crate) fn transform_unprofiled(&self, data: &mut [Complex32], direction: Direction) {
        assert_eq!(
            data.len(),
            self.size,
            "f32 FFT plan size {} does not match buffer length {}",
            self.size,
            data.len()
        );
        let n = self.size;
        if n == 1 {
            return;
        }
        for i in 0..n {
            let j = self.reversed[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let step = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let mut w = self.twiddles[k * step];
                    if direction == Direction::Inverse {
                        w = w.conj();
                    }
                    let a = data[start + k];
                    let b = data[start + k + half] * w;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            len <<= 1;
        }
        if direction == Direction::Inverse {
            let scale = 1.0 / n as f32;
            for z in data.iter_mut() {
                *z = z.scale(scale);
            }
        }
    }
}

/// Arbitrary-length FFT in single precision via Bluestein's chirp-z
/// trick — the same structure as [`crate::BluesteinPlan`]. Chirp phases
/// are computed in f64 before narrowing, so plan accuracy is limited by
/// the arithmetic, not the tables.
#[derive(Debug, Clone)]
pub struct BluesteinPlan32 {
    size: usize,
    inner: Inner32,
}

#[derive(Debug, Clone)]
enum Inner32 {
    Radix2(FftPlan32),
    Chirp {
        conv_len: usize,
        plan: FftPlan32,
        chirp: Vec<Complex32>,
        kernel_fft: Vec<Complex32>,
    },
}

impl BluesteinPlan32 {
    /// Creates a plan for transforms of length `size`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] when `size` is zero.
    pub fn new(size: usize) -> Result<Self, DspError> {
        if size == 0 {
            return Err(DspError::EmptyInput);
        }
        if size.is_power_of_two() {
            return Ok(Self {
                size,
                inner: Inner32::Radix2(FftPlan32::new(size)?),
            });
        }
        let conv_len = next_power_of_two(2 * size - 1);
        let plan = FftPlan32::new(conv_len)?;
        let chirp: Vec<Complex32> = (0..size)
            .map(|n| {
                let sq = (n as u128 * n as u128) % (2 * size as u128);
                Complex32::cis(-PI * sq as f64 / size as f64)
            })
            .collect();
        let mut kernel = vec![Complex32::ZERO; conv_len];
        kernel[0] = chirp[0].conj();
        for n in 1..size {
            let v = chirp[n].conj();
            kernel[n] = v;
            kernel[conv_len - n] = v;
        }
        plan.transform_unprofiled(&mut kernel, Direction::Forward);
        Ok(Self {
            size,
            inner: Inner32::Chirp {
                conv_len,
                plan,
                chirp,
                kernel_fft: kernel,
            },
        })
    }

    /// The transform length this plan was built for.
    pub fn size(&self) -> usize {
        self.size
    }

    /// In-place transform drawing working memory from `scratch`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from [`BluesteinPlan32::size`].
    pub fn transform_with(
        &self,
        data: &mut [Complex32],
        direction: Direction,
        scratch: &mut Scratch32,
    ) {
        assert_eq!(
            data.len(),
            self.size,
            "f32 Bluestein plan size {} does not match buffer length {}",
            self.size,
            data.len()
        );
        match &self.inner {
            Inner32::Radix2(plan) => plan.transform(data, direction),
            Inner32::Chirp {
                conv_len,
                plan,
                chirp,
                kernel_fft,
            } => {
                let n = self.size;
                uwb_obs::profile::work("bluestein.cmul", 2 * n as u64 + *conv_len as u64);
                let mut buf = scratch.acquire_zeroed(*conv_len);
                if direction == Direction::Inverse {
                    for z in data.iter_mut() {
                        *z = z.conj();
                    }
                }
                for i in 0..n {
                    buf[i] = data[i] * chirp[i];
                }
                plan.forward(&mut buf);
                for (b, k) in buf.iter_mut().zip(kernel_fft) {
                    *b *= *k;
                }
                plan.inverse(&mut buf);
                for k in 0..n {
                    data[k] = buf[k] * chirp[k];
                }
                if direction == Direction::Inverse {
                    let scale = 1.0 / n as f32;
                    for z in data.iter_mut() {
                        *z = z.conj().scale(scale);
                    }
                }
                scratch.release(buf);
            }
        }
    }
}

/// A pool of reusable `Vec<Complex32>` working buffers — the f32 twin
/// of [`crate::DspScratch`].
#[derive(Debug, Default)]
pub struct Scratch32 {
    pool: Vec<Vec<Complex32>>,
}

impl Scratch32 {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A buffer of exactly `len` zeros, reusing pooled capacity.
    pub fn acquire_zeroed(&mut self, len: usize) -> Vec<Complex32> {
        let mut buf = self.acquire();
        buf.resize(len, Complex32::ZERO);
        buf
    }

    /// An empty buffer with the largest pooled capacity available, so
    /// the big convolution transforms keep their big buffers and the
    /// steady state stays allocation-free.
    pub fn acquire(&mut self) -> Vec<Complex32> {
        let best = self
            .pool
            .iter()
            .enumerate()
            .max_by_key(|(_, buf)| buf.capacity())
            .map(|(i, _)| i);
        match best {
            Some(i) => {
                let mut buf = self.pool.swap_remove(i);
                buf.clear();
                buf
            }
            None => Vec::new(),
        }
    }

    /// Returns a buffer to the pool.
    pub fn release(&mut self, buf: Vec<Complex32>) {
        self.pool.push(buf);
    }

    /// Buffers currently parked in the pool.
    #[must_use]
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

/// The f32 planning/scratch state embedded in a [`crate::DspContext`]:
/// cached single-precision plans plus an f32 scratch arena.
#[derive(Debug, Default)]
pub struct Fp32Engine {
    radix2: HashMap<usize, Arc<FftPlan32>>,
    bluestein: HashMap<usize, Arc<BluesteinPlan32>>,
    /// Reusable f32 working buffers.
    pub scratch: Scratch32,
}

impl Fp32Engine {
    /// The f32 radix-2 plan for `size`, building and caching on first
    /// use.
    ///
    /// # Errors
    ///
    /// Propagates [`FftPlan32::new`] errors.
    pub fn radix2(&mut self, size: usize) -> Result<Arc<FftPlan32>, DspError> {
        if let Some(plan) = self.radix2.get(&size) {
            return Ok(Arc::clone(plan));
        }
        let plan = Arc::new(FftPlan32::new(size)?);
        self.radix2.insert(size, Arc::clone(&plan));
        Ok(plan)
    }

    /// The f32 arbitrary-length plan for `size`, building and caching
    /// on first use.
    ///
    /// # Errors
    ///
    /// Propagates [`BluesteinPlan32::new`] errors.
    pub fn bluestein(&mut self, size: usize) -> Result<Arc<BluesteinPlan32>, DspError> {
        if let Some(plan) = self.bluestein.get(&size) {
            return Ok(Arc::clone(plan));
        }
        let plan = Arc::new(BluesteinPlan32::new(size)?);
        self.bluestein.insert(size, Arc::clone(&plan));
        Ok(plan)
    }

    /// Single-precision FFT zero-padding upsampling: the f32 mirror of
    /// [`crate::upsample_fft_into`], converting from/to [`Complex64`]
    /// at the boundary. Steady state allocates nothing.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::upsample_fft`].
    pub fn upsample_into(
        &mut self,
        signal: &[Complex64],
        factor: usize,
        out: &mut Vec<Complex64>,
    ) -> Result<(), DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput);
        }
        if factor == 0 {
            return Err(DspError::InvalidFactor { factor });
        }
        if factor == 1 {
            out.clear();
            out.extend_from_slice(signal);
            return Ok(());
        }
        let n = signal.len();
        let m = n * factor;
        let forward = self.bluestein(n)?;
        let inverse = self.bluestein(m)?;

        let mut spectrum = self.scratch.acquire();
        spectrum.extend(signal.iter().map(|&z| Complex32::from_c64(z)));
        forward.transform_with(&mut spectrum, Direction::Forward, &mut self.scratch);

        // Same Nyquist-split layout as the f64 path.
        let mut padded = self.scratch.acquire_zeroed(m);
        let half = n / 2;
        if n.is_multiple_of(2) {
            padded[..half].copy_from_slice(&spectrum[..half]);
            let nyq = spectrum[half].scale(0.5);
            padded[half] = nyq;
            padded[m - half] = nyq;
            padded[m - half + 1..].copy_from_slice(&spectrum[half + 1..]);
        } else {
            padded[..=half].copy_from_slice(&spectrum[..=half]);
            padded[m - half..].copy_from_slice(&spectrum[half + 1..]);
        }
        self.scratch.release(spectrum);

        inverse.transform_with(&mut padded, Direction::Inverse, &mut self.scratch);
        let scale = factor as f32;
        out.clear();
        out.extend(padded.iter().map(|z| z.scale(scale).to_c64()));
        self.scratch.release(padded);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::dft_reference;
    use crate::resample::upsample_fft;

    fn widen(data: &[Complex32]) -> Vec<Complex64> {
        data.iter().map(|z| z.to_c64()).collect()
    }

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (*x - *y).abs() < tol,
                "mismatch at {i}: {x} vs {y} (tol {tol})"
            );
        }
    }

    #[test]
    fn fft32_matches_reference_within_f32_tolerance() {
        for &n in &[2usize, 8, 64, 1024] {
            let input64: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 1.71).cos()))
                .collect();
            let mut data: Vec<Complex32> =
                input64.iter().map(|&z| Complex32::from_c64(z)).collect();
            FftPlan32::new(n).unwrap().forward(&mut data);
            let expected = dft_reference(&input64, Direction::Forward);
            // The DFT sums n terms of magnitude ~1: absolute error scales
            // with n·2⁻²⁴ and a log-depth constant.
            assert_close(&widen(&data), &expected, 1e-5 * n as f64);
        }
    }

    #[test]
    fn fft32_roundtrip_recovers_input() {
        let n = 256;
        let plan = FftPlan32::new(n).unwrap();
        let input: Vec<Complex32> = (0..n)
            .map(|i| Complex32::new((i as f32 * 0.3).sin(), (i as f32 * 0.9).cos()))
            .collect();
        let mut data = input.clone();
        plan.forward(&mut data);
        plan.inverse(&mut data);
        assert_close(&widen(&data), &widen(&input), 1e-4);
    }

    #[test]
    fn bluestein32_matches_reference_for_cir_length() {
        for &n in &[15usize, 127, 1016] {
            let input64: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.13).sin(), (i as f64 * 0.41).cos()))
                .collect();
            let mut data: Vec<Complex32> =
                input64.iter().map(|&z| Complex32::from_c64(z)).collect();
            let mut scratch = Scratch32::new();
            BluesteinPlan32::new(n).unwrap().transform_with(
                &mut data,
                Direction::Forward,
                &mut scratch,
            );
            let expected = dft_reference(&input64, Direction::Forward);
            assert_close(&widen(&data), &expected, 2e-4 * n as f64);
        }
    }

    #[test]
    fn upsample32_tracks_the_f64_path() {
        let mut engine = Fp32Engine::default();
        let mut out = Vec::new();
        for &n in &[8usize, 15, 254] {
            let signal: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.21).sin(), (i as f64 * 0.34).cos()))
                .collect();
            for &factor in &[1usize, 2, 8] {
                let reference = upsample_fft(&signal, factor).unwrap();
                engine.upsample_into(&signal, factor, &mut out).unwrap();
                // Band-limited interpolation of O(1) samples: f32
                // rounding through two transforms stays ~1e-4 absolute.
                assert_close(&out, &reference, 5e-4 * n as f64);
            }
        }
        assert!(matches!(
            engine.upsample_into(&[], 2, &mut out),
            Err(DspError::EmptyInput)
        ));
        assert!(matches!(
            engine.upsample_into(&[Complex64::ONE], 0, &mut out),
            Err(DspError::InvalidFactor { factor: 0 })
        ));
    }

    #[test]
    fn upsample32_is_allocation_free_in_steady_state() {
        let mut engine = Fp32Engine::default();
        let signal: Vec<Complex64> = (0..254)
            .map(|i| Complex64::new((i as f64 * 0.21).sin(), 0.0))
            .collect();
        let mut out = Vec::new();
        engine.upsample_into(&signal, 8, &mut out).unwrap();
        // Warm state: both working buffers parked back in the pool.
        assert_eq!(engine.scratch.pooled(), 2);
        engine.upsample_into(&signal, 8, &mut out).unwrap();
        assert_eq!(engine.scratch.pooled(), 2);
    }

    #[test]
    fn plans_are_cached() {
        let mut engine = Fp32Engine::default();
        let a = engine.radix2(64).unwrap();
        let b = engine.radix2(64).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let c = engine.bluestein(1016).unwrap();
        let d = engine.bluestein(1016).unwrap();
        assert!(Arc::ptr_eq(&c, &d));
    }
}
