//! # uwb-dsp — signal-processing substrate for UWB simulation
//!
//! Self-contained DSP building blocks (std plus the in-tree `uwb-obs`
//! work counters — no external dependencies) used by the
//! concurrent-ranging reproduction of *Großwindhager et al., "Concurrent
//! Ranging with Ultra-Wideband Radios", ICDCS 2018*:
//!
//! - [`Complex64`]: minimal complex arithmetic.
//! - [`FftPlan`] / [`BluesteinPlan`]: radix-2 and arbitrary-length FFTs —
//!   the DW1000 channel impulse response is 1016 taps, so a non-power-of-two
//!   transform is required.
//! - [`convolve`] / [`correlate`] / [`MatchedFilter`]: the matched filter of
//!   the paper's Sect. IV detection algorithm (Eq. 3).
//! - [`upsample_fft`]: FFT zero-padding interpolation (Sect. IV, step 1).
//! - [`plan`]: plan-once/execute-many engine — [`DspContext`] caches FFT
//!   plans and recycles working buffers so the `*_into` entry points run
//!   allocation-free in steady state.
//! - [`Kernels`] / [`DspBackend`]: the backend-generic kernel set — a
//!   [`DspContext`] dispatches upsampling, matched filtering and batched
//!   correlation scoring to the bit-identical scalar f64 kernels
//!   (default), the cached real-FFT kernel-spectrum path
//!   ([`DspBackend::RealFft`]), or the single-precision set
//!   ([`DspBackend::F32`]). Selected via [`DspContext::with_backend`] or
//!   the `UWB_DSP_BACKEND` environment knob.
//! - [`RealFftPlan`]: half-cost FFT for real input (pack-two-reals).
//! - [`peaks`]: maxima, noise floor and sub-sample refinement utilities.
//! - [`stats`]: summary statistics used by the evaluation harness.
//! - [`compat`]: the pre-plan-cache allocating signatures, kept as thin
//!   wrappers for unmigrated callers.
//!
//! # Examples
//!
//! Locate a pulse embedded in noise with a matched filter:
//!
//! ```
//! use uwb_dsp::{Complex64, MatchedFilter, argmax};
//!
//! # fn main() -> Result<(), uwb_dsp::DspError> {
//! let template = [0.2f64, 0.8, 1.0, 0.8, 0.2];
//! let filter = MatchedFilter::from_real(&template)?;
//! let mut signal = vec![Complex64::ZERO; 64];
//! for (i, &t) in template.iter().enumerate() {
//!     signal[40 + i] = Complex64::from_real(0.5 * t);
//! }
//! let response = filter.apply_normalized(&signal)?;
//! let (index, _) = argmax(&response).expect("non-empty");
//! assert_eq!(index, 40);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod bluestein;
pub mod compat;
mod complex;
mod convolution;
mod error;
mod fft;
mod fp32;
mod kernels;
mod matched_filter;
pub mod peaks;
pub mod plan;
mod real_fft;
mod resample;
pub mod stats;

pub use backend::{DspBackend, BACKEND_ENV_VAR};
pub use bluestein::BluesteinPlan;
pub use complex::Complex64;
pub use convolution::{
    convolve, convolve_direct, convolve_fft, convolve_into, convolve_real, correlate,
    correlate_into, zero_lag_index,
};
pub use error::DspError;
pub use fft::{dft_reference, fft, ifft, next_power_of_two, Direction, FftPlan};
pub use fp32::{BluesteinPlan32, Complex32, FftPlan32, Fp32Engine, Scratch32};
pub use kernels::Kernels;
pub use matched_filter::MatchedFilter;
pub use peaks::{argmax, find_peaks, leading_edge, noise_floor, parabolic_interpolation, Peak};
pub use plan::{DspContext, DspScratch, PlanCache};
pub use real_fft::RealFftPlan;
pub use resample::{fractional_delay, upsample_fft, upsample_fft_into, upsample_real};
