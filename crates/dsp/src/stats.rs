//! Small statistics helpers used by the experiment harness and evaluations
//! (mean, standard deviation, percentiles, RMSE).

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation (Bessel-corrected, `n-1` denominator),
/// matching how the paper reports ranging spreads (e.g. σ₁ = 0.0228 m).
///
/// Returns 0.0 for fewer than two samples.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Population standard deviation (`n` denominator).
pub fn std_dev_population(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Root-mean-square error between estimates and references.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn rmse(estimates: &[f64], references: &[f64]) -> f64 {
    assert_eq!(
        estimates.len(),
        references.len(),
        "rmse requires equal-length inputs"
    );
    if estimates.is_empty() {
        return 0.0;
    }
    let sum: f64 = estimates
        .iter()
        .zip(references)
        .map(|(e, r)| (e - r).powi(2))
        .sum();
    (sum / estimates.len() as f64).sqrt()
}

/// Mean absolute error between estimates and references.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mae(estimates: &[f64], references: &[f64]) -> f64 {
    assert_eq!(
        estimates.len(),
        references.len(),
        "mae requires equal-length inputs"
    );
    if estimates.is_empty() {
        return 0.0;
    }
    estimates
        .iter()
        .zip(references)
        .map(|(e, r)| (e - r).abs())
        .sum::<f64>()
        / estimates.len() as f64
}

/// Percentile via linear interpolation between closest ranks.
///
/// `p` is in `[0, 100]` and is clamped. Returns 0.0 for an empty slice.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

/// Converts a linear power ratio to decibels. Returns negative infinity for
/// non-positive ratios.
pub fn to_db(ratio: f64) -> f64 {
    if ratio <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * ratio.log10()
    }
}

/// Converts decibels to a linear power ratio.
pub fn from_db(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_known_values() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0]), 2.0);
        assert!((mean(&[1.0, 2.0, 3.0, 4.0]) - 2.5).abs() < 1e-15);
    }

    #[test]
    fn std_dev_of_known_values() {
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        // Sample std of {2,4,4,4,5,5,7,9} with n-1: sqrt(32/7).
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&values) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!((std_dev_population(&values) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_and_mae() {
        let est = [1.0, 2.0, 3.0];
        let truth = [1.0, 2.0, 5.0];
        assert!((rmse(&est, &truth) - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mae(&est, &truth) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn rmse_panics_on_length_mismatch() {
        rmse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn percentile_interpolates() {
        let values = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&values, 0.0), 1.0);
        assert_eq!(percentile(&values, 100.0), 4.0);
        assert!((median(&values) - 2.5).abs() < 1e-12);
        assert!((percentile(&values, 25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn percentile_clamps_out_of_range() {
        let values = [1.0, 2.0];
        assert_eq!(percentile(&values, -5.0), 1.0);
        assert_eq!(percentile(&values, 150.0), 2.0);
    }

    #[test]
    fn db_roundtrip() {
        for &x in &[0.001, 1.0, 42.0, 1e6] {
            assert!((from_db(to_db(x)) - x).abs() < 1e-9 * x);
        }
        assert_eq!(to_db(0.0), f64::NEG_INFINITY);
        assert_eq!(to_db(-1.0), f64::NEG_INFINITY);
    }
}
