//! Error types for the DSP substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by DSP operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DspError {
    /// A radix-2 FFT was requested for a length that is not a power of two.
    NotPowerOfTwo {
        /// The offending length.
        size: usize,
    },
    /// An operation received an empty input buffer.
    EmptyInput,
    /// A resampling factor was zero or otherwise unusable.
    InvalidFactor {
        /// The offending factor.
        factor: usize,
    },
    /// Mismatched buffer lengths were supplied to an operation that
    /// requires equal lengths.
    LengthMismatch {
        /// Length of the first buffer.
        left: usize,
        /// Length of the second buffer.
        right: usize,
    },
    /// A template/kernel was longer than the signal it should be applied to.
    KernelTooLong {
        /// Kernel length.
        kernel: usize,
        /// Signal length.
        signal: usize,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotPowerOfTwo { size } => {
                write!(f, "length {size} is not a power of two")
            }
            Self::EmptyInput => write!(f, "input buffer is empty"),
            Self::InvalidFactor { factor } => {
                write!(f, "resampling factor {factor} is invalid")
            }
            Self::LengthMismatch { left, right } => {
                write!(f, "buffer lengths differ: {left} vs {right}")
            }
            Self::KernelTooLong { kernel, signal } => {
                write!(f, "kernel length {kernel} exceeds signal length {signal}")
            }
        }
    }
}

impl Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let variants = [
            DspError::NotPowerOfTwo { size: 3 },
            DspError::EmptyInput,
            DspError::InvalidFactor { factor: 0 },
            DspError::LengthMismatch { left: 1, right: 2 },
            DspError::KernelTooLong {
                kernel: 9,
                signal: 4,
            },
        ];
        for v in variants {
            let msg = v.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }
}
