//! Pre-plan-cache allocating kernel signatures, kept for callers that
//! migrated before the `DspContext`/[`crate::Kernels`] redesign.
//!
//! **Deprecated in favor of the planned entry points.** Every wrapper
//! here allocates its plans and working buffers per call; the planned
//! `*_into` counterparts ([`crate::convolve_into`],
//! [`crate::upsample_fft_into`], [`crate::MatchedFilter::apply_into`])
//! and the backend-generic [`crate::Kernels`] trait amortize both and
//! are bit-identical on the default backend. New code should hold a
//! [`crate::DspContext`] and call through [`crate::Kernels`]; these
//! wrappers exist so old call sites keep compiling (and stay covered by
//! the equivalence tests) while they migrate.
//!
//! The wrappers are thin — each delegates to the current implementation
//! of the same kernel, so behavior and outputs are exactly those of the
//! modern paths.

use crate::complex::Complex64;
use crate::error::DspError;

/// Allocating in-place forward FFT — the original free-function entry
/// point. Prefer a cached plan ([`crate::PlanCache::bluestein`]) or
/// [`crate::Kernels::fft_into`].
///
/// # Errors
///
/// Same conditions as [`crate::fft`].
pub fn fft(data: &mut [Complex64]) -> Result<(), DspError> {
    crate::fft::fft(data)
}

/// Allocating in-place inverse FFT. Prefer a cached plan or
/// [`crate::Kernels::fft_into`].
///
/// # Errors
///
/// Same conditions as [`crate::ifft`].
pub fn ifft(data: &mut [Complex64]) -> Result<(), DspError> {
    crate::fft::ifft(data)
}

/// Allocating linear convolution. Prefer [`crate::convolve_into`] with
/// a [`crate::DspContext`].
///
/// # Errors
///
/// Same conditions as [`crate::convolve`].
pub fn convolve(a: &[Complex64], b: &[Complex64]) -> Result<Vec<Complex64>, DspError> {
    crate::convolution::convolve(a, b)
}

/// Allocating FFT-path convolution (no direct-path fallback). Prefer
/// [`crate::convolve_into`], which picks the faster path itself.
///
/// # Errors
///
/// Same conditions as [`crate::convolve_fft`].
pub fn convolve_fft(a: &[Complex64], b: &[Complex64]) -> Result<Vec<Complex64>, DspError> {
    crate::convolution::convolve_fft(a, b)
}

/// Allocating cross-correlation. Prefer [`crate::correlate_into`].
///
/// # Errors
///
/// Same conditions as [`crate::correlate`].
pub fn correlate(a: &[Complex64], b: &[Complex64]) -> Result<Vec<Complex64>, DspError> {
    crate::convolution::correlate(a, b)
}

/// Allocating FFT zero-padding upsampler. Prefer
/// [`crate::upsample_fft_into`] or [`crate::Kernels::upsample_into`].
///
/// # Errors
///
/// Same conditions as [`crate::upsample_fft`].
pub fn upsample_fft(signal: &[Complex64], factor: usize) -> Result<Vec<Complex64>, DspError> {
    crate::resample::upsample_fft(signal, factor)
}

/// Allocating matched-filter application. Prefer
/// [`crate::MatchedFilter::apply_into`] or
/// [`crate::Kernels::matched_filter_into`].
///
/// # Errors
///
/// Same conditions as [`crate::MatchedFilter::apply`].
pub fn matched_filter_apply(
    filter: &crate::MatchedFilter,
    signal: &[Complex64],
) -> Result<Vec<Complex64>, DspError> {
    filter.apply(signal)
}

/// Allocating normalized matched-filter magnitudes. Prefer
/// [`crate::MatchedFilter::apply_normalized_into`] or
/// [`crate::Kernels::matched_filter_mags_into`].
///
/// # Errors
///
/// Same conditions as [`crate::MatchedFilter::apply_normalized`].
pub fn matched_filter_apply_normalized(
    filter: &crate::MatchedFilter,
    signal: &[Complex64],
) -> Result<Vec<f64>, DspError> {
    filter.apply_normalized(signal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DspContext, Kernels, MatchedFilter};

    #[test]
    fn wrappers_delegate_to_the_modern_paths() {
        let signal: Vec<Complex64> = (0..300)
            .map(|i| Complex64::new((i as f64 * 0.2).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let kernel: Vec<Complex64> = (0..40)
            .map(|i| Complex64::from_real(0.1 * i as f64))
            .collect();

        // fft/ifft are the power-of-two one-shots.
        let mut data = signal[..256].to_vec();
        fft(&mut data).unwrap();
        let mut roundtrip = data.clone();
        ifft(&mut roundtrip).unwrap();
        assert!(signal[..256]
            .iter()
            .zip(&roundtrip)
            .all(|(a, b)| (*a - *b).abs() < 1e-9));

        assert_eq!(
            convolve(&signal, &kernel).unwrap(),
            crate::convolve(&signal, &kernel).unwrap()
        );
        assert_eq!(
            correlate(&signal, &kernel).unwrap(),
            crate::correlate(&signal, &kernel).unwrap()
        );
        assert_eq!(
            upsample_fft(&signal, 4).unwrap(),
            crate::upsample_fft(&signal, 4).unwrap()
        );

        let filter = MatchedFilter::from_real(&[0.2, 1.0, 0.2]).unwrap();
        let mut ctx = DspContext::new();
        let mut planned = Vec::new();
        ctx.matched_filter_into(&filter, &signal, &mut planned)
            .unwrap();
        assert_eq!(matched_filter_apply(&filter, &signal).unwrap(), planned);
        let allocated = matched_filter_apply_normalized(&filter, &signal).unwrap();
        let mut planned_norm = Vec::new();
        filter
            .apply_normalized_into(&signal, &mut planned_norm, &mut ctx)
            .unwrap();
        assert_eq!(allocated, planned_norm);
    }
}
