//! Cross-backend tolerance contract for the [`Kernels`] kernel set.
//!
//! The redesign's correctness argument has three legs, each asserted
//! here at the kernel level (the end-to-end ToA leg lives in
//! `uwb-core`'s detection tests):
//!
//! 1. **ScalarF64 is bit-identical** to the historical allocating
//!    pipeline — not "close", *equal* — because campaign determinism
//!    hashes detector outputs.
//! 2. **RealFft is f64-exact up to FFT reassociation**: it computes the
//!    same convolution with the same transform length, differing only
//!    in where the kernel spectrum came from, so outputs agree to
//!    ~1e-9 of the peak.
//! 3. **F32 errors are bounded by rounding analysis**: a length-K
//!    transform accumulates ≈ log₂K half-ulp roundings on values of
//!    magnitude ≈ the signal envelope, so relative error stays around
//!    `2⁻²⁴·log₂K` — orders of magnitude below the CIR noise floor any
//!    detector threshold sits on.

use uwb_dsp::{
    upsample_fft, Complex64, DspBackend, DspContext, Kernels, MatchedFilter, RealFftPlan,
};

/// Deterministic xorshift so the proptest-style sweeps need no
/// external RNG crate.
struct Rng(u64);

impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }

    fn signal(&mut self, n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|_| Complex64::new(self.next_f64(), self.next_f64()))
            .collect()
    }
}

fn pulse_template(len: usize, width: f64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let t = (i as f64 - len as f64 / 2.0) / width;
            (-t * t).exp()
        })
        .collect()
}

#[test]
fn real_fft_equals_complex_fft_for_random_real_input() {
    let mut rng = Rng(0x9e3779b97f4a7c15);
    for &n in &[2usize, 8, 64, 512, 4096] {
        for trial in 0..8 {
            let input: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
            let mut complex: Vec<Complex64> =
                input.iter().map(|&x| Complex64::from_real(x)).collect();
            // Pad-free power-of-two length: the plain radix-2 reference.
            uwb_dsp::fft(&mut complex).unwrap();
            let real = RealFftPlan::new(n).unwrap().forward(&input);
            for (k, (x, y)) in real.iter().zip(&complex).enumerate() {
                assert!(
                    (*x - *y).abs() < 1e-11 * n as f64,
                    "n={n} trial={trial} bin={k}: {x} vs {y}"
                );
            }
        }
    }
}

#[test]
fn matched_filter_backends_agree_across_random_shapes() {
    let mut rng = Rng(0xdeadbeefcafef00d);
    // Mix of direct-path and FFT-path shapes, including the paper's
    // 1016-tap CIR upsampled by 8.
    for &(signal_len, kernel_len) in &[(64usize, 8usize), (500, 64), (1016, 64), (8128, 64)] {
        let signal = rng.signal(signal_len);
        let template = pulse_template(kernel_len, kernel_len as f64 / 6.0);
        let filter = MatchedFilter::from_real(&template).unwrap();

        let mut scalar = DspContext::new();
        let mut reference = Vec::new();
        scalar
            .matched_filter_mags_into(&filter, &signal, &mut reference)
            .unwrap();
        let peak = reference.iter().cloned().fold(0.0f64, f64::max);

        for (backend, tol) in [(DspBackend::RealFft, 1e-9), (DspBackend::F32, 1e-3)] {
            let mut ctx = DspContext::with_backend(backend);
            let mut out = Vec::new();
            ctx.matched_filter_mags_into(&filter, &signal, &mut out)
                .unwrap();
            assert_eq!(out.len(), reference.len());
            for (i, (x, y)) in reference.iter().zip(&out).enumerate() {
                assert!(
                    (x - y).abs() <= tol * peak,
                    "{backend} ({signal_len}x{kernel_len}) sample {i}: {x} vs {y} (peak {peak})"
                );
            }
        }
    }
}

#[test]
fn upsample_backends_agree_for_cir_length() {
    let mut rng = Rng(0x1234_5678_9abc_def1);
    let signal = rng.signal(1016);
    let reference = upsample_fft(&signal, 8).unwrap();
    let envelope = reference.iter().map(|z| z.abs()).fold(0.0f64, f64::max);

    // f64 backends must reproduce the allocating path bit for bit.
    for backend in [DspBackend::ScalarF64, DspBackend::RealFft] {
        let mut ctx = DspContext::with_backend(backend);
        let mut out = Vec::new();
        ctx.upsample_into(&signal, 8, &mut out).unwrap();
        assert_eq!(out, reference, "{backend}");
    }

    let mut ctx = DspContext::with_backend(DspBackend::F32);
    let mut out = Vec::new();
    ctx.upsample_into(&signal, 8, &mut out).unwrap();
    assert_eq!(out.len(), reference.len());
    for (i, (x, y)) in out.iter().zip(&reference).enumerate() {
        assert!(
            (*x - *y).abs() < 1e-3 * envelope,
            "f32 sample {i}: {x} vs {y}"
        );
    }
}

#[test]
fn env_selected_backend_matches_explicit_construction() {
    // parse() is the pure core of the env knob — exercising it here
    // avoids mutating process environment in a threaded test binary.
    assert_eq!(DspBackend::parse("f64"), Some(DspBackend::ScalarF64));
    assert_eq!(DspBackend::parse(" RFFT "), Some(DspBackend::RealFft));
    assert_eq!(DspBackend::parse("F32"), Some(DspBackend::F32));
    assert_eq!(DspBackend::parse("avx512"), None);
    for backend in DspBackend::ALL {
        assert_eq!(DspBackend::parse(backend.label()), Some(backend));
        assert_eq!(
            DspContext::with_backend(backend).backend(),
            backend,
            "context must hold its selection"
        );
    }
}

#[test]
fn backend_switch_preserves_results_and_caches() {
    let mut rng = Rng(0xfeed_face_dead_beef);
    let signal = rng.signal(8128);
    let template = pulse_template(64, 10.0);
    let filter = MatchedFilter::from_real(&template).unwrap();

    let mut ctx = DspContext::new();
    let mut scalar_out = Vec::new();
    ctx.matched_filter_mags_into(&filter, &signal, &mut scalar_out)
        .unwrap();

    ctx.set_backend(DspBackend::RealFft);
    let mut rfft_out = Vec::new();
    ctx.matched_filter_mags_into(&filter, &signal, &mut rfft_out)
        .unwrap();

    ctx.set_backend(DspBackend::ScalarF64);
    let mut back = Vec::new();
    ctx.matched_filter_mags_into(&filter, &signal, &mut back)
        .unwrap();
    assert_eq!(
        back, scalar_out,
        "returning to the scalar backend must restore bit-identical output"
    );

    let peak = scalar_out.iter().cloned().fold(0.0f64, f64::max);
    for (x, y) in scalar_out.iter().zip(&rfft_out) {
        assert!((x - y).abs() < 1e-9 * peak);
    }
}
