//! Property-based tests for the DSP substrate.

use proptest::prelude::*;
use uwb_dsp::{
    convolve, convolve_into, correlate, correlate_into, dft_reference, fft, fractional_delay, ifft,
    noise_floor, parabolic_interpolation, stats, upsample_fft, upsample_fft_into, BluesteinPlan,
    Complex64, Direction, DspContext, MatchedFilter,
};

fn complex_vec(
    len: impl Into<proptest::collection::SizeRange>,
) -> impl Strategy<Value = Vec<Complex64>> {
    proptest::collection::vec(
        (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(re, im)| Complex64::new(re, im)),
        len,
    )
}

fn max_abs_diff(a: &[Complex64], b: &[Complex64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #[test]
    fn fft_roundtrip_power_of_two(exp in 0usize..9, data in complex_vec(1..=256)) {
        let n = 1usize << exp;
        let mut buf: Vec<Complex64> = data.into_iter().cycle().take(n).collect();
        let original = buf.clone();
        fft(&mut buf).unwrap();
        ifft(&mut buf).unwrap();
        prop_assert!(max_abs_diff(&buf, &original) < 1e-6);
    }

    #[test]
    fn bluestein_matches_reference(data in complex_vec(1..64)) {
        let expected = dft_reference(&data, Direction::Forward);
        let mut actual = data.clone();
        BluesteinPlan::new(data.len()).unwrap().forward(&mut actual);
        prop_assert!(max_abs_diff(&actual, &expected) < 1e-5 * data.len() as f64);
    }

    #[test]
    fn bluestein_roundtrip(data in complex_vec(1..200)) {
        let plan = BluesteinPlan::new(data.len()).unwrap();
        let mut buf = data.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        prop_assert!(max_abs_diff(&buf, &data) < 1e-5);
    }

    #[test]
    fn fft_preserves_energy(data in complex_vec(1..128)) {
        let n = data.len().next_power_of_two();
        let mut buf = data.clone();
        buf.resize(n, Complex64::ZERO);
        let time_energy: f64 = buf.iter().map(|z| z.norm_sqr()).sum();
        fft(&mut buf).unwrap();
        let freq_energy: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time_energy - freq_energy).abs() <= 1e-6 * time_energy.max(1.0));
    }

    #[test]
    fn convolution_commutes(a in complex_vec(1..40), b in complex_vec(1..40)) {
        let ab = convolve(&a, &b).unwrap();
        let ba = convolve(&b, &a).unwrap();
        prop_assert!(max_abs_diff(&ab, &ba) < 1e-6);
    }

    #[test]
    fn convolution_output_length(a in complex_vec(1..40), b in complex_vec(1..40)) {
        let out = convolve(&a, &b).unwrap();
        prop_assert_eq!(out.len(), a.len() + b.len() - 1);
    }

    #[test]
    fn convolution_distributes_over_addition(
        a in complex_vec(8..16),
        b in complex_vec(8..16),
    ) {
        // conv(a, b + b) == 2·conv(a, b)
        let doubled: Vec<Complex64> = b.iter().map(|z| z.scale(2.0)).collect();
        let lhs = convolve(&a, &doubled).unwrap();
        let rhs: Vec<Complex64> = convolve(&a, &b).unwrap().iter().map(|z| z.scale(2.0)).collect();
        prop_assert!(max_abs_diff(&lhs, &rhs) < 1e-6);
    }

    #[test]
    fn autocorrelation_peaks_at_zero_lag(a in complex_vec(2..64)) {
        // Skip degenerate all-zero inputs.
        let energy: f64 = a.iter().map(|z| z.norm_sqr()).sum();
        prop_assume!(energy > 1e-9);
        let corr = correlate(&a, &a).unwrap();
        let zero = uwb_dsp::zero_lag_index(a.len());
        let peak = corr[zero].abs();
        for (i, z) in corr.iter().enumerate() {
            if i != zero {
                prop_assert!(z.abs() <= peak + 1e-6 * peak.max(1.0));
            }
        }
        // Zero-lag autocorrelation equals the energy.
        prop_assert!((corr[zero].re - energy).abs() < 1e-6 * energy.max(1.0));
        prop_assert!(corr[zero].im.abs() < 1e-6 * energy.max(1.0));
    }

    #[test]
    fn upsample_preserves_samples(data in complex_vec(2..80), factor in 2usize..6) {
        let up = upsample_fft(&data, factor).unwrap();
        prop_assert_eq!(up.len(), data.len() * factor);
        for (k, &orig) in data.iter().enumerate() {
            prop_assert!((up[k * factor] - orig).abs() < 1e-6);
        }
    }

    #[test]
    fn fractional_delay_roundtrip(data in complex_vec(2..64), delay in -8.0f64..8.0) {
        let shifted = fractional_delay(&data, delay).unwrap();
        let back = fractional_delay(&shifted, -delay).unwrap();
        prop_assert!(max_abs_diff(&back, &data) < 1e-5);
    }

    #[test]
    fn matched_filter_peak_scales_linearly(
        template in proptest::collection::vec(0.01f64..1.0, 3..12),
        amp in 0.1f64..10.0,
        offset in 0usize..20,
    ) {
        let filter = MatchedFilter::from_real(&template).unwrap();
        let mut signal = vec![Complex64::ZERO; 40];
        for (i, &t) in template.iter().enumerate() {
            signal[offset + i] = Complex64::from_real(amp * t);
        }
        let out = filter.apply(&signal).unwrap();
        let expected = amp * filter.energy();
        prop_assert!((out[offset].abs() - expected).abs() < 1e-6 * expected);
    }

    #[test]
    fn noise_floor_below_max(values in proptest::collection::vec(0.0f64..1000.0, 1..100)) {
        let floor = noise_floor(&values, 0.4);
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(floor <= max + 1e-12);
    }

    #[test]
    fn parabolic_interpolation_stays_within_half_sample(
        values in proptest::collection::vec(0.0f64..10.0, 3..50),
        idx in 1usize..48,
    ) {
        prop_assume!(idx + 1 < values.len());
        let refined = parabolic_interpolation(&values, idx);
        prop_assert!((refined - idx as f64).abs() <= 0.5);
    }

    #[test]
    fn percentile_is_monotone(values in proptest::collection::vec(-1e3f64..1e3, 1..60), p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(stats::percentile(&values, lo) <= stats::percentile(&values, hi) + 1e-12);
    }

    #[test]
    fn std_dev_is_translation_invariant(values in proptest::collection::vec(-1e3f64..1e3, 2..60), shift in -1e3f64..1e3) {
        let shifted: Vec<f64> = values.iter().map(|v| v + shift).collect();
        prop_assert!((stats::std_dev(&values) - stats::std_dev(&shifted)).abs() < 1e-6);
    }

    // --- planned-engine bit-identity contract ---------------------------
    //
    // The `*_into` entry points and the scratch-backed Bluestein variants
    // must reproduce the allocating paths *exactly* (assert_eq on f64
    // pairs, not a tolerance): the campaign determinism guarantee relies
    // on planned and unplanned code being interchangeable.

    #[test]
    fn planned_bluestein_is_bit_identical(data in complex_vec(1..300)) {
        let plan = BluesteinPlan::new(data.len()).unwrap();
        let mut ctx = DspContext::new();
        let mut planned = data.clone();
        let mut unplanned = data.clone();
        plan.forward_with(&mut planned, &mut ctx.scratch);
        plan.forward(&mut unplanned);
        prop_assert_eq!(&planned, &unplanned);
        plan.inverse_with(&mut planned, &mut ctx.scratch);
        plan.inverse(&mut unplanned);
        prop_assert_eq!(&planned, &unplanned);
        // Warm scratch: a second pass must still match.
        let mut warm = data.clone();
        plan.forward_with(&mut warm, &mut ctx.scratch);
        let mut reference = data.clone();
        plan.forward(&mut reference);
        prop_assert_eq!(&warm, &reference);
    }

    #[test]
    fn planned_convolve_is_bit_identical(a in complex_vec(1..200), b in complex_vec(1..200)) {
        let mut ctx = DspContext::new();
        let mut out = Vec::new();
        let reference = convolve(&a, &b).unwrap();
        convolve_into(&a, &b, &mut out, &mut ctx).unwrap();
        prop_assert_eq!(&out, &reference);
        convolve_into(&a, &b, &mut out, &mut ctx).unwrap();
        prop_assert_eq!(&out, &reference);
    }

    #[test]
    fn planned_correlate_is_bit_identical(a in complex_vec(1..120), b in complex_vec(1..120)) {
        let mut ctx = DspContext::new();
        let mut out = Vec::new();
        correlate_into(&a, &b, &mut out, &mut ctx).unwrap();
        prop_assert_eq!(&out, &correlate(&a, &b).unwrap());
    }

    #[test]
    fn planned_upsample_is_bit_identical(data in complex_vec(1..140), factor in 1usize..6) {
        let mut ctx = DspContext::new();
        let mut out = Vec::new();
        let reference = upsample_fft(&data, factor).unwrap();
        upsample_fft_into(&data, factor, &mut out, &mut ctx).unwrap();
        prop_assert_eq!(&out, &reference);
        upsample_fft_into(&data, factor, &mut out, &mut ctx).unwrap();
        prop_assert_eq!(&out, &reference);
    }

    #[test]
    fn planned_matched_filter_is_bit_identical(
        template in complex_vec(1..24),
        signal in complex_vec(1..160),
    ) {
        let filter = MatchedFilter::new(&template).unwrap();
        let mut ctx = DspContext::new();
        let mut out = Vec::new();
        filter.apply_into(&signal, &mut out, &mut ctx).unwrap();
        prop_assert_eq!(&out, &filter.apply(&signal).unwrap());
        let mut mags = Vec::new();
        filter.apply_normalized_into(&signal, &mut mags, &mut ctx).unwrap();
        prop_assert_eq!(&mags, &filter.apply_normalized(&signal).unwrap());
    }
}

/// The DW1000 CIR shape itself — N=1016 upsampled ×8 to 8128, the exact
/// sizes the detection pipeline runs — must be bit-identical through the
/// planned engine, including on a warm context.
#[test]
fn planned_paths_bit_identical_at_cir_sizes() {
    let n = 1016;
    let cir: Vec<Complex64> = (0..n)
        .map(|i| Complex64::new((i as f64 * 0.013).sin(), (i as f64 * 0.41).cos() * 0.3))
        .collect();
    let mut ctx = DspContext::new();

    let plan = BluesteinPlan::new(n).unwrap();
    let mut planned = cir.clone();
    let mut unplanned = cir.clone();
    plan.forward_with(&mut planned, &mut ctx.scratch);
    plan.forward(&mut unplanned);
    assert_eq!(planned, unplanned, "Bluestein N=1016 forward");

    let reference = upsample_fft(&cir, 8).unwrap();
    let mut out = Vec::new();
    for pass in 0..2 {
        upsample_fft_into(&cir, 8, &mut out, &mut ctx).unwrap();
        assert_eq!(out, reference, "upsample 1016x8, pass {pass}");
    }

    let template: Vec<Complex64> = (0..100)
        .map(|i| Complex64::from_real((-((i as f64 - 50.0) / 12.0).powi(2)).exp()))
        .collect();
    let filter = MatchedFilter::new(&template).unwrap();
    let mf_reference = filter.apply(&reference).unwrap();
    let mut mf_out = Vec::new();
    for pass in 0..2 {
        filter
            .apply_into(&reference, &mut mf_out, &mut ctx)
            .unwrap();
        assert_eq!(
            mf_out, mf_reference,
            "matched filter over 8128, pass {pass}"
        );
    }
}
