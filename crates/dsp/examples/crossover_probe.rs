//! Measures the direct-vs-FFT convolution crossover that calibrates
//! `FFT_COST_RATIO` in `src/convolution.rs`.
//!
//! For a grid of `(signal, kernel)` length pairs, times both
//! `convolve_direct` (O(N·M)) and `convolve_fft` (O(K log K) plus the
//! per-call plan build the allocating entry point pays) and prints the
//! winner. The committed threshold is read off this table on the target
//! container; re-run with `cargo run --release -p uwb-dsp --example
//! crossover_probe` after toolchain or hardware changes.

use std::time::Instant;
use uwb_dsp::{convolve_direct, convolve_fft, Complex64};

fn signal(len: usize, phase: f64) -> Vec<Complex64> {
    (0..len)
        .map(|i| Complex64::new((i as f64 * 0.37 + phase).sin(), (i as f64 * 0.11).cos()))
        .collect()
}

fn time_ns(mut f: impl FnMut(), reps: u32) -> f64 {
    // One warmup, then the minimum over repeated runs (interference on a
    // shared host only ever adds time).
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

fn main() {
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>12} {:>8}",
        "n", "m", "product", "direct_ns", "fft_ns", "winner"
    );
    for &(n, m) in &[
        (64usize, 64usize),
        (128, 64),
        (128, 128),
        (256, 64),
        (256, 128),
        (512, 64),
        (512, 128),
        (1016, 32),
        (1016, 64),
        (1016, 96),
        (1016, 128),
        (2048, 64),
        (8128, 64),
        (8128, 96),
        (8128, 803),
    ] {
        let a = signal(n, 0.0);
        let b = signal(m, 1.0);
        let reps = (2_000_000 / (n * m).max(1)).clamp(3, 200) as u32;
        let direct = time_ns(
            || {
                std::hint::black_box(convolve_direct(&a, &b));
            },
            reps,
        );
        let fft = time_ns(
            || {
                std::hint::black_box(convolve_fft(&a, &b).unwrap());
            },
            reps,
        );
        println!(
            "{:>8} {:>8} {:>12} {:>12.0} {:>12.0} {:>8}",
            n,
            m,
            n * m,
            direct,
            fft,
            if direct <= fft { "direct" } else { "fft" }
        );
    }
}
