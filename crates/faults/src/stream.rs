//! Stateless, seed-derived random streams for fault decisions.
//!
//! Fault injection must not perturb the simulation's own RNG stream:
//! [`crate::FaultPlan::none`] has to be a *bit-identical* no-op, and a
//! campaign's fault schedule has to be reproducible at any thread count.
//! Both fall out of the same design used by `uwb_campaign`'s per-trial
//! seed derivation: every decision is a pure function of
//! `(seed, domain, context)` through the SplitMix64 finalizer — no
//! sequential generator state anywhere.

/// The SplitMix64 increment (the 64-bit golden ratio).
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 finalizer (Steele, Lea & Flood / MurmurHash3 fmix64
/// variant): a bijective avalanche mix of 64 bits.
#[inline]
#[must_use]
pub fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The independent decision domains of the fault plane. Each fault class
/// draws from its own stream, so enabling one class never shifts the
/// schedule of another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum FaultDomain {
    /// Per-link frame erasure.
    FrameLoss = 1,
    /// Per-link payload corruption (CRC failure; channel energy remains).
    PayloadCorruption = 2,
    /// A receiver missing an entire accumulation window (failed preamble
    /// acquisition).
    Dropout = 3,
    /// A scheduled transmission firing late by a fixed guard-violating
    /// delay.
    LateReply = 4,
    /// Gaussian jitter on every scheduled transmission time.
    TxJitter = 5,
    /// A transient SNR dip on the synthesized accumulator.
    SnrDip = 6,
    /// Per-tap corruption of the synthesized accumulator.
    TapCorruption = 7,
}

/// A stateless random stream: every draw is keyed by a
/// [`FaultDomain`] plus two free context words (node ids, sequence
/// counters, tap indices — whatever makes the decision site unique).
///
/// # Examples
///
/// ```
/// use uwb_faults::{FaultDomain, FaultStream};
///
/// let s = FaultStream::new(42);
/// let a = s.uniform(FaultDomain::FrameLoss, 3, 0);
/// assert_eq!(a, s.uniform(FaultDomain::FrameLoss, 3, 0)); // pure
/// assert_ne!(a, s.uniform(FaultDomain::FrameLoss, 3, 1)); // keyed
/// assert!((0.0..1.0).contains(&a));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultStream {
    seed: u64,
}

impl FaultStream {
    /// A stream rooted at a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The root seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The raw 64-bit hash for a decision context.
    #[must_use]
    pub fn hash(&self, domain: FaultDomain, a: u64, b: u64) -> u64 {
        let mut h = mix(self.seed.wrapping_add(GOLDEN_GAMMA));
        h = mix(h ^ (domain as u64).wrapping_mul(GOLDEN_GAMMA));
        h = mix(h ^ a.wrapping_mul(GOLDEN_GAMMA).wrapping_add(GOLDEN_GAMMA));
        mix(h ^ b.wrapping_mul(GOLDEN_GAMMA).wrapping_add(GOLDEN_GAMMA))
    }

    /// A uniform draw in `[0, 1)` for a decision context.
    #[must_use]
    pub fn uniform(&self, domain: FaultDomain, a: u64, b: u64) -> f64 {
        // 53 high bits → the standard double-precision uniform.
        (self.hash(domain, a, b) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A standard-normal draw for a decision context (Box–Muller over two
    /// decorrelated sub-streams of the same context).
    #[must_use]
    pub fn normal(&self, domain: FaultDomain, a: u64, b: u64) -> f64 {
        let h1 = self.hash(domain, a, b.wrapping_mul(2));
        let h2 = self.hash(domain, a, b.wrapping_mul(2).wrapping_add(1));
        // u1 in (0, 1] so the log is finite.
        let u1 = ((h1 >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
        let u2 = (h2 >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_pure_functions_of_context() {
        let s = FaultStream::new(7);
        for a in 0..8u64 {
            for b in 0..8u64 {
                assert_eq!(
                    s.hash(FaultDomain::FrameLoss, a, b),
                    s.hash(FaultDomain::FrameLoss, a, b)
                );
            }
        }
    }

    #[test]
    fn domains_are_independent() {
        let s = FaultStream::new(7);
        assert_ne!(
            s.hash(FaultDomain::FrameLoss, 1, 2),
            s.hash(FaultDomain::PayloadCorruption, 1, 2)
        );
        assert_ne!(
            s.hash(FaultDomain::Dropout, 1, 2),
            s.hash(FaultDomain::LateReply, 1, 2)
        );
    }

    #[test]
    fn uniform_is_in_unit_interval_and_roughly_uniform() {
        let s = FaultStream::new(3);
        let n = 10_000u64;
        let mut sum = 0.0;
        for i in 0..n {
            let u = s.uniform(FaultDomain::SnrDip, i, 0);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normal_has_unit_scale() {
        let s = FaultStream::new(9);
        let n = 10_000u64;
        let (mut sum, mut sq) = (0.0, 0.0);
        for i in 0..n {
            let x = s.normal(FaultDomain::TxJitter, i, 0);
            assert!(x.is_finite());
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn seeds_decorrelate_streams() {
        let a = FaultStream::new(1);
        let b = FaultStream::new(2);
        let n = 2_000u64;
        let mut acc = 0.0;
        for i in 0..n {
            let x = a.uniform(FaultDomain::FrameLoss, i, 0);
            let y = b.uniform(FaultDomain::FrameLoss, i, 0);
            acc += (x - 0.5) * (y - 0.5);
        }
        let cov = acc / n as f64;
        assert!(cov.abs() < 0.01, "covariance {cov}");
    }
}
