//! The [`FaultInjector`]: executes a [`FaultPlan`] at the simulator's
//! decision points, counting every injected fault.

use crate::plan::FaultPlan;
use crate::stream::{FaultDomain, FaultStream};

/// Counters of injected faults, by class.
///
/// Plain `u64` fields so campaign collectors can merge them in chunk
/// order (bit-identical at any thread count). The same counts are
/// mirrored into `uwb_obs` counters (`faults.injected.*`) whenever a
/// recorder is installed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames erased on a link.
    pub frames_lost: u64,
    /// Frames delivered with an undecodable payload.
    pub payloads_corrupted: u64,
    /// Accumulation windows dropped whole (failed preamble acquisition).
    pub dropouts: u64,
    /// Transmissions fired late by the guard-violating delay.
    pub late_replies: u64,
    /// Transmissions perturbed by Gaussian TX jitter.
    pub tx_jitters: u64,
    /// Rounds rendered under an SNR dip.
    pub snr_dips: u64,
    /// Accumulator taps corrupted.
    pub taps_corrupted: u64,
}

impl FaultStats {
    /// Adds another stats block into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.frames_lost += other.frames_lost;
        self.payloads_corrupted += other.payloads_corrupted;
        self.dropouts += other.dropouts;
        self.late_replies += other.late_replies;
        self.tx_jitters += other.tx_jitters;
        self.snr_dips += other.snr_dips;
        self.taps_corrupted += other.taps_corrupted;
    }

    /// Total injected faults across every class.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.frames_lost
            + self.payloads_corrupted
            + self.dropouts
            + self.late_replies
            + self.tx_jitters
            + self.snr_dips
            + self.taps_corrupted
    }
}

fn obs_count(name: &'static str) {
    if uwb_obs::enabled() {
        uwb_obs::counter(name, 1);
    }
}

/// Executes a [`FaultPlan`] deterministically.
///
/// Each decision method takes the context words that make its site
/// unique (sequence counters, node ids, tap indices); the verdict is a
/// pure function of `(plan.seed, domain, context)`, so the same plan
/// replays the same schedule regardless of thread count, call order, or
/// what other fault classes are enabled. With an inactive plan every
/// method returns its no-fault value without drawing or counting.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    stream: FaultStream,
    stats: FaultStats,
}

impl FaultInjector {
    /// An injector executing a plan.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            stream: FaultStream::new(plan.seed()),
            stats: FaultStats::default(),
        }
    }

    /// The plan being executed.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injected-fault counters so far.
    #[must_use]
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Whether any fault class can fire.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.plan.is_active()
    }

    /// Should the frame of transmission `tx_seq` on the link `src → dst`
    /// be erased?
    pub fn lose_frame(&mut self, tx_seq: u64, src: u32, dst: u32) -> bool {
        if self.plan.frame_loss() <= 0.0 {
            return false;
        }
        let link = (u64::from(src) << 32) | u64::from(dst);
        let hit =
            self.stream.uniform(FaultDomain::FrameLoss, tx_seq, link) < self.plan.frame_loss();
        if hit {
            self.stats.frames_lost += 1;
            obs_count("faults.injected.frame_loss");
        }
        hit
    }

    /// Should the payload of transmission `tx_seq` on the link
    /// `src → dst` arrive corrupted (energy lands, CRC fails)?
    pub fn corrupt_payload(&mut self, tx_seq: u64, src: u32, dst: u32) -> bool {
        if self.plan.payload_corruption() <= 0.0 {
            return false;
        }
        let link = (u64::from(src) << 32) | u64::from(dst);
        let hit = self
            .stream
            .uniform(FaultDomain::PayloadCorruption, tx_seq, link)
            < self.plan.payload_corruption();
        if hit {
            self.stats.payloads_corrupted += 1;
            obs_count("faults.injected.payload_corruption");
        }
        hit
    }

    /// Should receiver `node` drop its `window_seq`-th accumulation
    /// window entirely?
    pub fn dropout(&mut self, node: u32, window_seq: u64) -> bool {
        if self.plan.responder_dropout() <= 0.0 {
            return false;
        }
        let hit = self
            .stream
            .uniform(FaultDomain::Dropout, window_seq, u64::from(node))
            < self.plan.responder_dropout();
        if hit {
            self.stats.dropouts += 1;
            obs_count("faults.injected.dropout");
        }
        hit
    }

    /// Extra delay (seconds) applied to the actual fire time of node
    /// `node`'s `sched_seq`-th scheduled transmission: Gaussian TX jitter
    /// plus, with the plan's late-reply probability, the guard-violating
    /// late-fire delay. Returns `0.0` when neither class is enabled.
    pub fn tx_delay_s(&mut self, node: u32, sched_seq: u64) -> f64 {
        let mut delay = 0.0;
        if self.plan.tx_jitter_s() > 0.0 {
            delay += self.plan.tx_jitter_s()
                * self
                    .stream
                    .normal(FaultDomain::TxJitter, sched_seq, u64::from(node));
            self.stats.tx_jitters += 1;
            obs_count("faults.injected.tx_jitter");
        }
        if self.plan.late_reply() > 0.0
            && self
                .stream
                .uniform(FaultDomain::LateReply, sched_seq, u64::from(node))
                < self.plan.late_reply()
        {
            delay += self.plan.late_reply_delay_s();
            self.stats.late_replies += 1;
            obs_count("faults.injected.late_reply");
        }
        delay
    }

    /// SNR reduction (dB, ≥ 0) for rendering round `round`'s
    /// accumulator. `0.0` when no dip fires.
    pub fn snr_dip_db(&mut self, round: u64) -> f64 {
        if self.plan.snr_dip() <= 0.0 {
            return 0.0;
        }
        if self.stream.uniform(FaultDomain::SnrDip, round, 0) < self.plan.snr_dip() {
            self.stats.snr_dips += 1;
            obs_count("faults.injected.snr_dip");
            self.plan.snr_dip_db()
        } else {
            0.0
        }
    }

    /// Decides whether tap `tap` of the accumulator rendered in context
    /// `context` is corrupted; if so, returns two uniforms in `[0, 1)`
    /// (magnitude fraction and phase fraction) for the caller to build
    /// the garbage value from.
    pub fn corrupt_tap(&mut self, context: u64, tap: usize) -> Option<(f64, f64)> {
        if self.plan.tap_corruption() <= 0.0 {
            return None;
        }
        let t = tap as u64;
        if self
            .stream
            .uniform(FaultDomain::TapCorruption, context, t.wrapping_mul(4))
            >= self.plan.tap_corruption()
        {
            return None;
        }
        self.stats.taps_corrupted += 1;
        obs_count("faults.injected.tap_corruption");
        let mag = self.stream.uniform(
            FaultDomain::TapCorruption,
            context,
            t.wrapping_mul(4).wrapping_add(1),
        );
        let phase = self.stream.uniform(
            FaultDomain::TapCorruption,
            context,
            t.wrapping_mul(4).wrapping_add(2),
        );
        Some((mag, phase))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy(p: f64, seed: u64) -> FaultInjector {
        FaultInjector::new(
            FaultPlan::none()
                .with_seed(seed)
                .with_frame_loss(p)
                .unwrap(),
        )
    }

    #[test]
    fn inactive_plan_never_fires_or_counts() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        for i in 0..100 {
            assert!(!inj.lose_frame(i, 0, 1));
            assert!(!inj.corrupt_payload(i, 0, 1));
            assert!(!inj.dropout(0, i));
            assert_eq!(inj.tx_delay_s(0, i), 0.0);
            assert_eq!(inj.snr_dip_db(i), 0.0);
            assert_eq!(inj.corrupt_tap(i, 5), None);
        }
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn loss_rate_matches_probability() {
        let mut inj = lossy(0.3, 9);
        let n = 20_000u64;
        for i in 0..n {
            inj.lose_frame(i, 0, 1);
        }
        let rate = inj.stats().frames_lost as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn decisions_are_reproducible_and_seed_dependent() {
        let schedule = |seed: u64| {
            let mut inj = lossy(0.5, seed);
            (0..64).map(|i| inj.lose_frame(i, 2, 3)).collect::<Vec<_>>()
        };
        assert_eq!(schedule(1), schedule(1));
        assert_ne!(schedule(1), schedule(2));
    }

    #[test]
    fn call_order_does_not_change_verdicts() {
        // The same (context) decision gives the same verdict whether or
        // not other decisions were drawn in between — the property that
        // makes campaign fault schedules thread-count invariant.
        let plan = FaultPlan::none()
            .with_seed(4)
            .with_frame_loss(0.4)
            .unwrap()
            .with_responder_dropout(0.4)
            .unwrap();
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        let verdict_a = a.lose_frame(10, 1, 2);
        for i in 0..50 {
            b.dropout(3, i);
        }
        assert_eq!(b.lose_frame(10, 1, 2), verdict_a);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = FaultStats {
            frames_lost: 2,
            dropouts: 1,
            ..FaultStats::default()
        };
        let b = FaultStats {
            frames_lost: 3,
            taps_corrupted: 7,
            ..FaultStats::default()
        };
        a.merge(&b);
        assert_eq!(a.frames_lost, 5);
        assert_eq!(a.dropouts, 1);
        assert_eq!(a.taps_corrupted, 7);
        assert_eq!(a.total(), 13);
    }

    #[test]
    fn late_reply_adds_fixed_delay() {
        let mut inj = FaultInjector::new(
            FaultPlan::none()
                .with_seed(6)
                .with_late_reply(1.0, 500e-9)
                .unwrap(),
        );
        assert_eq!(inj.tx_delay_s(0, 0), 500e-9);
        assert_eq!(inj.stats().late_replies, 1);
    }

    #[test]
    fn tap_corruption_yields_unit_uniforms() {
        let mut inj = FaultInjector::new(
            FaultPlan::none()
                .with_seed(8)
                .with_tap_corruption(1.0)
                .unwrap(),
        );
        let (mag, phase) = inj.corrupt_tap(0, 17).unwrap();
        assert!((0.0..1.0).contains(&mag));
        assert!((0.0..1.0).contains(&phase));
        assert_eq!(inj.stats().taps_corrupted, 1);
    }
}
