//! The [`FaultPlan`] builder: a validated, copyable description of which
//! faults to inject and how often.

use std::error::Error;
use std::fmt;

/// A rejected [`FaultPlan`] parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum FaultError {
    /// A probability outside `[0, 1]` (or non-finite).
    InvalidProbability {
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A magnitude (delay, jitter sigma, dB depth) that is negative or
    /// non-finite.
    InvalidMagnitude {
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidProbability { field, value } => {
                write!(f, "fault probability `{field}` = {value} is not in [0, 1]")
            }
            Self::InvalidMagnitude { field, value } => {
                write!(
                    f,
                    "fault magnitude `{field}` = {value} is negative or non-finite"
                )
            }
        }
    }
}

impl Error for FaultError {}

fn probability(field: &'static str, value: f64) -> Result<f64, FaultError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(FaultError::InvalidProbability { field, value })
    }
}

fn magnitude(field: &'static str, value: f64) -> Result<f64, FaultError> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(FaultError::InvalidMagnitude { field, value })
    }
}

/// A deterministic fault-injection plan.
///
/// A `FaultPlan` is a plain value: `Copy`, comparable, and fully
/// validated at construction — every chainable `with_*` setter returns
/// `Result`, so a plan that exists is a plan the injector can execute.
/// [`FaultPlan::none`] (the default) disables every fault class and is
/// guaranteed to be a bit-identical no-op in the simulator: decisions are
/// drawn from stateless hash streams (see [`crate::FaultStream`]), never
/// from the simulation RNG.
///
/// # Examples
///
/// ```
/// use uwb_faults::FaultPlan;
///
/// let plan = FaultPlan::none()
///     .with_seed(42)
///     .with_frame_loss(0.3)?
///     .with_responder_dropout(0.1)?
///     .with_snr_dip(0.2, 12.0)?;
/// assert!(plan.is_active());
/// assert_eq!(plan.frame_loss(), 0.3);
/// assert!(!FaultPlan::none().is_active());
/// # Ok::<(), uwb_faults::FaultError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    frame_loss: f64,
    payload_corruption: f64,
    responder_dropout: f64,
    late_reply: f64,
    late_reply_delay_s: f64,
    tx_jitter_s: f64,
    snr_dip: f64,
    snr_dip_db: f64,
    tap_corruption: f64,
}

/// Default extra delay of a late reply: a bit over one RPM slot at the
/// paper's 4-slot plan (δ ≈ 254 ns), so a late responder lands in the
/// next slot's guard region and its slot decode fails.
pub const DEFAULT_LATE_REPLY_DELAY_S: f64 = 300e-9;

/// Default depth of an SNR dip in dB.
pub const DEFAULT_SNR_DIP_DB: f64 = 12.0;

impl FaultPlan {
    /// The all-disabled plan: every probability zero, every magnitude
    /// zero. Injectors running this plan draw nothing and count nothing.
    #[must_use]
    pub const fn none() -> Self {
        Self {
            seed: 0,
            frame_loss: 0.0,
            payload_corruption: 0.0,
            responder_dropout: 0.0,
            late_reply: 0.0,
            late_reply_delay_s: DEFAULT_LATE_REPLY_DELAY_S,
            tx_jitter_s: 0.0,
            snr_dip: 0.0,
            snr_dip_db: DEFAULT_SNR_DIP_DB,
            tap_corruption: 0.0,
        }
    }

    /// Roots the plan's decision streams at a seed. Two plans with the
    /// same rates but different seeds produce different (but individually
    /// reproducible) fault schedules.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Per-link, per-frame erasure probability: the frame never reaches
    /// that receiver (no payload, no channel energy).
    ///
    /// # Errors
    ///
    /// Rejects probabilities outside `[0, 1]`.
    pub fn with_frame_loss(mut self, p: f64) -> Result<Self, FaultError> {
        self.frame_loss = probability("frame_loss", p)?;
        Ok(self)
    }

    /// Per-link, per-frame payload-corruption probability: the frame's
    /// CRC fails (payload undecodable) but its channel energy still lands
    /// in the receiver's accumulator.
    ///
    /// # Errors
    ///
    /// Rejects probabilities outside `[0, 1]`.
    pub fn with_payload_corruption(mut self, p: f64) -> Result<Self, FaultError> {
        self.payload_corruption = probability("payload_corruption", p)?;
        Ok(self)
    }

    /// Per-window receiver-dropout probability: the node misses an entire
    /// accumulation window (failed preamble acquisition), so a responder
    /// never hears INIT or an initiator never sees the reply window.
    ///
    /// # Errors
    ///
    /// Rejects probabilities outside `[0, 1]`.
    pub fn with_responder_dropout(mut self, p: f64) -> Result<Self, FaultError> {
        self.responder_dropout = probability("responder_dropout", p)?;
        Ok(self)
    }

    /// Per-transmission late-fire probability and the extra delay applied
    /// when it triggers. The sender's *embedded* timestamps still claim
    /// the intended time, so a late reply lands outside its RPM guard
    /// slot and corrupts the slot decode — exactly the deployment failure
    /// the paper's guard bands exist for.
    ///
    /// # Errors
    ///
    /// Rejects probabilities outside `[0, 1]` and negative or non-finite
    /// delays.
    pub fn with_late_reply(mut self, p: f64, delay_s: f64) -> Result<Self, FaultError> {
        self.late_reply = probability("late_reply", p)?;
        self.late_reply_delay_s = magnitude("late_reply_delay_s", delay_s)?;
        Ok(self)
    }

    /// Gaussian jitter (σ, seconds) on every scheduled transmission's
    /// actual fire time — clock drift between scheduling and firing. The
    /// embedded timestamps keep the intended time, so jitter shows up as
    /// ranging error.
    ///
    /// # Errors
    ///
    /// Rejects negative or non-finite sigmas.
    pub fn with_tx_jitter(mut self, sigma_s: f64) -> Result<Self, FaultError> {
        self.tx_jitter_s = magnitude("tx_jitter_s", sigma_s)?;
        Ok(self)
    }

    /// Per-round SNR-dip probability and depth (dB): a transient
    /// sensitivity loss raising the accumulator noise floor for that
    /// round.
    ///
    /// # Errors
    ///
    /// Rejects probabilities outside `[0, 1]` and negative or non-finite
    /// depths.
    pub fn with_snr_dip(mut self, p: f64, dip_db: f64) -> Result<Self, FaultError> {
        self.snr_dip = probability("snr_dip", p)?;
        self.snr_dip_db = magnitude("snr_dip_db", dip_db)?;
        Ok(self)
    }

    /// Per-tap accumulator corruption probability: a corrupted tap is
    /// replaced by garbage scaled to the CIR peak (ghost energy or an
    /// erasure).
    ///
    /// # Errors
    ///
    /// Rejects probabilities outside `[0, 1]`.
    pub fn with_tap_corruption(mut self, p: f64) -> Result<Self, FaultError> {
        self.tap_corruption = probability("tap_corruption", p)?;
        Ok(self)
    }

    /// The decision-stream seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Frame-erasure probability.
    #[must_use]
    pub fn frame_loss(&self) -> f64 {
        self.frame_loss
    }

    /// Payload-corruption probability.
    #[must_use]
    pub fn payload_corruption(&self) -> f64 {
        self.payload_corruption
    }

    /// Receiver-dropout probability.
    #[must_use]
    pub fn responder_dropout(&self) -> f64 {
        self.responder_dropout
    }

    /// Late-reply probability.
    #[must_use]
    pub fn late_reply(&self) -> f64 {
        self.late_reply
    }

    /// Extra delay of a late reply, seconds.
    #[must_use]
    pub fn late_reply_delay_s(&self) -> f64 {
        self.late_reply_delay_s
    }

    /// TX jitter σ, seconds.
    #[must_use]
    pub fn tx_jitter_s(&self) -> f64 {
        self.tx_jitter_s
    }

    /// SNR-dip probability.
    #[must_use]
    pub fn snr_dip(&self) -> f64 {
        self.snr_dip
    }

    /// SNR-dip depth, dB.
    #[must_use]
    pub fn snr_dip_db(&self) -> f64 {
        self.snr_dip_db
    }

    /// Per-tap corruption probability.
    #[must_use]
    pub fn tap_corruption(&self) -> f64 {
        self.tap_corruption
    }

    /// Whether any fault class can fire under this plan.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.frame_loss > 0.0
            || self.payload_corruption > 0.0
            || self.responder_dropout > 0.0
            || self.late_reply > 0.0
            || self.tx_jitter_s > 0.0
            || self.snr_dip > 0.0
            || self.tap_corruption > 0.0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_default() {
        assert!(!FaultPlan::none().is_active());
        assert_eq!(FaultPlan::default(), FaultPlan::none());
    }

    #[test]
    fn builders_chain_and_record() {
        let p = FaultPlan::none()
            .with_seed(5)
            .with_frame_loss(0.25)
            .unwrap()
            .with_payload_corruption(0.1)
            .unwrap()
            .with_responder_dropout(0.05)
            .unwrap()
            .with_late_reply(0.2, 400e-9)
            .unwrap()
            .with_tx_jitter(2e-9)
            .unwrap()
            .with_snr_dip(0.3, 9.0)
            .unwrap()
            .with_tap_corruption(0.02)
            .unwrap();
        assert!(p.is_active());
        assert_eq!(p.seed(), 5);
        assert_eq!(p.frame_loss(), 0.25);
        assert_eq!(p.payload_corruption(), 0.1);
        assert_eq!(p.responder_dropout(), 0.05);
        assert_eq!(p.late_reply(), 0.2);
        assert_eq!(p.late_reply_delay_s(), 400e-9);
        assert_eq!(p.tx_jitter_s(), 2e-9);
        assert_eq!(p.snr_dip(), 0.3);
        assert_eq!(p.snr_dip_db(), 9.0);
        assert_eq!(p.tap_corruption(), 0.02);
    }

    #[test]
    fn invalid_probabilities_are_rejected() {
        for bad in [-0.1, 1.1, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                FaultPlan::none().with_frame_loss(bad),
                Err(FaultError::InvalidProbability { .. })
            ));
            assert!(FaultPlan::none().with_payload_corruption(bad).is_err());
            assert!(FaultPlan::none().with_responder_dropout(bad).is_err());
            assert!(FaultPlan::none().with_snr_dip(bad, 10.0).is_err());
            assert!(FaultPlan::none().with_tap_corruption(bad).is_err());
        }
    }

    #[test]
    fn invalid_magnitudes_are_rejected() {
        assert!(matches!(
            FaultPlan::none().with_tx_jitter(-1e-9),
            Err(FaultError::InvalidMagnitude { .. })
        ));
        assert!(FaultPlan::none().with_late_reply(0.1, f64::NAN).is_err());
        assert!(FaultPlan::none().with_snr_dip(0.1, -3.0).is_err());
    }

    #[test]
    fn boundary_probabilities_are_accepted() {
        assert!(FaultPlan::none().with_frame_loss(0.0).is_ok());
        assert!(FaultPlan::none().with_frame_loss(1.0).is_ok());
    }

    #[test]
    fn error_display_names_the_field() {
        let err = FaultPlan::none().with_frame_loss(2.0).unwrap_err();
        assert!(err.to_string().contains("frame_loss"));
        let err = FaultPlan::none().with_tx_jitter(-1.0).unwrap_err();
        assert!(err.to_string().contains("tx_jitter_s"));
    }

    #[test]
    fn jitter_alone_makes_plan_active() {
        let p = FaultPlan::none().with_tx_jitter(1e-9).unwrap();
        assert!(p.is_active());
    }
}
