//! # uwb-faults — deterministic fault injection for the ranging pipeline
//!
//! Real concurrent-ranging deployments lose frames, miss preambles, fire
//! replies late and suffer transient SNR collapses (the paper's Sect. IV
//! and VI exist *because* detection must survive weak, overlapping and
//! missing responses). This crate is the workspace's fault plane: a
//! validated [`FaultPlan`] describes which failure classes fire and how
//! often, and a [`FaultInjector`] executes it at the simulator's decision
//! points.
//!
//! Two properties make the plane safe to thread through every layer:
//!
//! 1. **Disabled means gone.** [`FaultPlan::none`] draws nothing: no
//!    random state is consumed, no counters tick, and every experiment
//!    reproduces its fault-free output bit-identically.
//! 2. **Determinism at any thread count.** Decisions come from stateless
//!    SplitMix64 hash streams ([`FaultStream`]) keyed by
//!    `(seed, domain, context)` — never from the simulation RNG — so a
//!    campaign's fault schedule is a pure function of its seeds,
//!    independent of worker count and call interleaving.
//!
//! Injected faults are counted per class in [`FaultStats`] and mirrored
//! to `uwb_obs` counters (`faults.injected.*`); the recovery layers in
//! `concurrent-ranging` (retry, partial results) count their side as
//! `faults.recovered.*`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod injector;
mod plan;
mod stream;

pub use injector::{FaultInjector, FaultStats};
pub use plan::{FaultError, FaultPlan, DEFAULT_LATE_REPLY_DELAY_S, DEFAULT_SNR_DIP_DB};
pub use stream::{mix, FaultDomain, FaultStream, GOLDEN_GAMMA};
