//! # uwb-testkit — independent readers for hand-written artifacts
//!
//! The workspace writes every artifact by hand (the build environment is
//! offline, so no `serde`/`csv`): CSV tables from the campaign writers,
//! JSONL traces from `uwb-obs`, and the `BENCH_*.json` baselines from
//! `uwb-perfwatch`. This crate holds the *reader* side — a minimal JSON
//! parser and an RFC-4180 CSV parser written independently of the
//! production renderers — so that:
//!
//! * round-trip property tests (`crates/campaign/tests/properties.rs`,
//!   `crates/perfwatch/tests/`) can close the loop against a parser that
//!   shares no code with the writers, and
//! * the `uwb-trace` analyzer can consume JSONL traces and bench
//!   baselines with clear errors instead of panics.
//!
//! Numbers keep their raw token ([`Json::Num`]) so exact-text round-trip
//! comparisons stay possible; [`Json::as_f64`] parses on demand.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A parse failure with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input at which parsing failed.
    pub pos: usize,
    /// Human-readable description of what went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// A parsed JSON value. Numbers keep their raw token so comparisons
/// against a writer's output can be exact (no re-serialisation
/// tolerance).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw token text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in document order (duplicates preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object (first occurrence). `None` for
    /// non-objects and missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, for [`Json::Str`].
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number parsed as `f64`, for [`Json::Num`].
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `u64`, for [`Json::Num`] holding an integer
    /// token.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The boolean payload, for [`Json::Bool`].
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, for [`Json::Arr`].
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, for [`Json::Obj`].
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// An array field's elements parsed as `f64`, with JSON `null`
    /// (how the writers render non-finite floats) mapped to NaN.
    #[must_use]
    pub fn as_f64_list(&self) -> Option<Vec<f64>> {
        let items = self.as_array()?;
        items
            .iter()
            .map(|item| match item {
                Json::Null => Some(f64::NAN),
                other => other.as_f64(),
            })
            .collect()
    }
}

/// Parses one complete JSON value; trailing non-whitespace input is an
/// error.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first malformed byte.
pub fn parse_json(input: &str) -> Result<Json, ParseError> {
    let mut parser = JsonParser {
        input: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse()?;
    parser.skip_ws();
    if parser.pos != parser.input.len() {
        return Err(parser.error("trailing input after JSON value"));
    }
    Ok(value)
}

struct JsonParser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn error(&self, msg: &str) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Result<u8, ParseError> {
        self.input
            .get(self.pos)
            .copied()
            .ok_or_else(|| self.error("unexpected end of input"))
    }

    fn bump(&mut self) -> Result<u8, ParseError> {
        let b = self.peek()?;
        self.pos += 1;
        Ok(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), ParseError> {
        let got = self.bump()?;
        if got != want {
            self.pos -= 1;
            return Err(self.error(&format!(
                "expected {:?}, got {:?}",
                want as char, got as char
            )));
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while matches!(self.input.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn parse(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        match self.peek()? {
            b'n' => self.literal(b"null").map(|()| Json::Null),
            b't' => self.literal(b"true").map(|()| Json::Bool(true)),
            b'f' => self.literal(b"false").map(|()| Json::Bool(false)),
            b'"' => self.string().map(Json::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            b => Err(self.error(&format!("unexpected byte {:?}", b as char))),
        }
    }

    fn literal(&mut self, lit: &[u8]) -> Result<(), ParseError> {
        for &b in lit {
            self.expect(b)?;
        }
        Ok(())
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        while self.pos < self.input.len()
            && matches!(
                self.input[self.pos],
                b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'
            )
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected a number"));
        }
        let tok = std::str::from_utf8(&self.input[start..self.pos])
            .expect("number tokens are ASCII")
            .to_string();
        Ok(Json::Num(tok))
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse()?);
            self.skip_ws();
            match self.bump()? {
                b',' => {}
                b']' => return Ok(Json::Arr(items)),
                _ => {
                    self.pos -= 1;
                    return Err(self.error("expected ',' or ']' in array"));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.parse()?));
            self.skip_ws();
            match self.bump()? {
                b',' => {}
                b'}' => return Ok(Json::Obj(fields)),
                _ => {
                    self.pos -= 1;
                    return Err(self.error("expected ',' or '}' in object"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let digit = (self.bump()? as char)
                                .to_digit(16)
                                .ok_or_else(|| self.error("invalid \\u hex escape"))?;
                            code = code * 16 + digit;
                        }
                        // The writers only emit BMP escapes (control
                        // chars); reject surrogates rather than pair them.
                        let c = char::from_u32(code)
                            .ok_or_else(|| self.error("\\u escape is not a scalar value"))?;
                        out.push(c);
                    }
                    _ => {
                        self.pos -= 1;
                        return Err(self.error("unsupported string escape"));
                    }
                },
                b => {
                    // Re-assemble a multi-byte UTF-8 sequence.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let mut bytes = vec![b];
                    for _ in 1..len {
                        bytes.push(self.bump()?);
                    }
                    let s = std::str::from_utf8(&bytes)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }
}

/// Parses an RFC-4180 CSV document: quoted fields may contain commas,
/// doubled quotes and newlines; rows are `\n`-terminated.
///
/// # Errors
///
/// Returns a [`ParseError`] on an unterminated quoted field.
pub fn parse_csv(input: &str) -> Result<Vec<Vec<String>>, ParseError> {
    let mut rows = Vec::new();
    let mut row = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = input.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => row.push(std::mem::take(&mut field)),
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                c => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(ParseError {
            pos: input.len(),
            msg: "unterminated quoted field".to_string(),
        });
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json("true").unwrap(), Json::Bool(true));
        assert_eq!(
            parse_json("-1.5e3").unwrap(),
            Json::Num("-1.5e3".to_string())
        );
        assert_eq!(
            parse_json("[1,null,\"x\"]").unwrap(),
            Json::Arr(vec![
                Json::Num("1".to_string()),
                Json::Null,
                Json::Str("x".to_string()),
            ])
        );
        let obj = parse_json("{\"a\": 1, \"b\": {\"c\": []}}").unwrap();
        assert_eq!(obj.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(
            obj.get("b").and_then(|b| b.get("c")),
            Some(&Json::Arr(vec![]))
        );
        assert_eq!(obj.get("missing"), None);
    }

    #[test]
    fn unescapes_strings() {
        let v = parse_json(r#""a\n\t\"\\\u00e9\u0001""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\é\u{1}"));
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(parse_json("\"λé\"").unwrap().as_str(), Some("λé"));
    }

    #[test]
    fn rejects_malformed_input_with_position() {
        for (input, wants) in [
            ("", "end of input"),
            ("{\"a\":}", "unexpected byte"),
            ("[1,", "end of input"),
            ("1 2", "trailing input"),
            ("\"abc", "end of input"),
            ("nul", "end of input"),
        ] {
            let err = parse_json(input).unwrap_err();
            assert!(err.msg.contains(wants), "{input:?} -> {err}");
        }
    }

    #[test]
    fn accessors_convert_numbers_and_lists() {
        let v = parse_json("{\"xs\": [1.5, null, -2]}").unwrap();
        let xs = v.get("xs").unwrap().as_f64_list().unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[0], 1.5);
        assert!(xs[1].is_nan());
        assert_eq!(xs[2], -2.0);
        assert_eq!(v.get("xs").unwrap().as_f64(), None);
    }

    #[test]
    fn csv_handles_quoting() {
        let rows = parse_csv("a,b\n\"x,\"\"y\"\"\n\",2\n").unwrap();
        assert_eq!(
            rows,
            vec![
                vec!["a".to_string(), "b".to_string()],
                vec!["x,\"y\"\n".to_string(), "2".to_string()],
            ]
        );
        assert!(parse_csv("\"open").is_err());
    }
}
