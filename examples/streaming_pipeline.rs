//! Streaming round pipeline: how a new driver plugs in.
//!
//! Run with `cargo run --release --example streaming_pipeline`.
//!
//! One [`RoundProgram`] — render two overlapping responses, detect them
//! with the search-and-subtract stage — is driven two ways: streamed one
//! round at a time through a [`RangingPipeline`] (a long-lived warmed
//! [`RoundContext`], the shape a ranging service would use), and fanned
//! across worker threads by the batch campaign engine. Both drivers
//! derive each round's RNG as `trial_rng(seed, round)`, so the outputs
//! agree *bit for bit* — the equivalence `exp_fig7_overlap --stream`
//! smokes in CI and `crates/bench/tests/pipeline_equivalence.rs` pins.

use concurrent_ranging::detection::{SearchSubtractConfig, SearchSubtractDetector};
use concurrent_ranging::{DetectStage, RangingPipeline, RenderStage, RoundContext, RoundProgram};
use rand::Rng;
use uwb_campaign::{trial_rng, Campaign, Collect, TrialRng};
use uwb_channel::Arrival;
use uwb_dsp::Complex64;
use uwb_radio::{Channel, Prf, PulseShape, RadioConfig, TcPgDelay};

const ROUNDS: u64 = 32;
const SEED: u64 = 7;

/// Two responders whose replies land within the DW1000's ±8 ns TX-grid
/// jitter of each other — the paper's Fig. 7 overlap geometry.
struct TwoResponderProgram {
    render: RenderStage,
    detect: DetectStage<SearchSubtractDetector>,
    pulse: PulseShape,
}

impl TwoResponderProgram {
    fn new() -> Self {
        let detector = SearchSubtractDetector::from_registers(
            &[TcPgDelay::DEFAULT],
            Channel::Ch7,
            SearchSubtractConfig {
                capture_diagnostics: false,
                ..SearchSubtractConfig::default()
            },
        )
        .expect("detector construction");
        Self {
            render: RenderStage::new(Prf::Mhz64),
            detect: DetectStage::new(detector),
            pulse: PulseShape::from_config(&RadioConfig::default()),
        }
    }
}

impl RoundProgram for TwoResponderProgram {
    /// The two detected arrival times [ns] (NaN when a peak is missed).
    type Output = [f64; 2];

    fn run_round(&self, ctx: &mut RoundContext, _round: u64, rng: &mut TrialRng) -> [f64; 2] {
        let offset_ns = 8.0 * (2.0 * rng.random::<f64>() - 1.0); // TX-grid jitter
        let base_ns = 100.0 + rng.random::<f64>();
        let arrivals: Vec<Arrival> = [base_ns, base_ns + offset_ns]
            .iter()
            .zip([1.0, 0.8])
            .map(|(&tau_ns, amp)| Arrival {
                delay_s: tau_ns * 1e-9,
                amplitude: Complex64::from_polar(amp, 0.05 * tau_ns),
                pulse: self.pulse,
            })
            .collect();
        self.render.render_into(ctx.cir_mut(), &arrivals, 0.02, rng);
        let outcome = self.detect.detect_scratch(ctx, 2).expect("detection runs");
        let mut taus_ns = [f64::NAN; 2];
        for (slot, r) in taus_ns.iter_mut().zip(outcome.responses.iter()) {
            *slot = r.tau_s * 1e9;
        }
        taus_ns
    }
}

/// Per-round outputs in round order — the campaign's chunk-ordered merge
/// reassembles exactly the sequence the streaming loop produces.
#[derive(Debug, Clone, Default)]
struct Rounds(Vec<(u64, [f64; 2])>);

impl Collect<[f64; 2]> for Rounds {
    fn record(&mut self, round: u64, taus_ns: [f64; 2]) {
        self.0.push((round, taus_ns));
    }

    fn merge(&mut self, other: Self) {
        self.0.extend(other.0);
    }
}

fn main() {
    // Driver 1 — streaming: one warmed context, rounds arrive one at a
    // time and each result is available immediately (no batch barrier).
    let mut pipeline = RangingPipeline::new(TwoResponderProgram::new());
    let mut streamed = Rounds::default();
    for round in 0..ROUNDS {
        let taus = pipeline.feed_round(round, &mut trial_rng(SEED, round));
        streamed.record(round, taus);
    }

    // Driver 2 — batch: the same program under the campaign engine on
    // four worker threads, one warmed context per worker.
    let program = TwoResponderProgram::new();
    let batch = Campaign::new(ROUNDS, SEED)
        .threads(4)
        .run_with_context(
            RoundContext::new,
            |ctx, round, rng| program.run_round(ctx, round, rng),
            Rounds::default(),
        )
        .collector;

    println!("round  first [ns]  second [ns]");
    for (round, taus) in streamed.0.iter().take(8) {
        println!("{round:>5}  {:>10.4}  {:>11.4}", taus[0], taus[1]);
    }
    println!("  ...  ({ROUNDS} rounds total)");

    // Bit-for-bit, not approximately: compare the f64 bit patterns.
    let identical = streamed.0.len() == batch.0.len()
        && streamed.0.iter().zip(&batch.0).all(|((ri, a), (rj, b))| {
            ri == rj && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        });
    assert!(identical, "streaming and batch outputs diverged");
    println!("\nstreaming (1 warmed context) == batch campaign (4 threads): bit-identical");
}
