//! Anchor-based indoor positioning — the paper's motivating IoT use case
//! and declared future work.
//!
//! Run with `cargo run --release --example museum_positioning`.
//!
//! A visitor tag (the initiator) walks through a museum hall instrumented
//! with four fixed UWB anchors. At each waypoint the tag performs ONE
//! concurrent ranging round — a single transmit and a single receive —
//! obtains distances to all four anchors from the CIR, and multilaterates
//! its own position. With scheduled TWR the same fix would cost eight
//! message exchanges per waypoint.

use concurrent_ranging::{
    multilaterate, CombinedScheme, ConcurrentConfig, ConcurrentEngine, RangeToAnchor, SlotPlan,
};
use uwb_channel::{ChannelConfig, ChannelModel, Point2, Room};
use uwb_netsim::{NodeConfig, SimConfig, Simulator};

const HALL_W: f64 = 18.0;
const HALL_H: f64 = 12.0;

fn main() -> Result<(), uwb_error::Error> {
    let anchors = [
        Point2::new(0.5, 0.5),
        Point2::new(HALL_W - 0.5, 0.5),
        Point2::new(HALL_W - 0.5, HALL_H - 0.5),
        Point2::new(0.5, HALL_H - 0.5),
    ];
    // One slot per anchor keeps responses and their multipath apart.
    let scheme = CombinedScheme::new(SlotPlan::new(4)?, 1)?;

    // A lightly reverberant exhibition hall.
    let channel_config = ChannelConfig::default().with_amplitude_jitter_db(0.8);
    let channel =
        ChannelModel::with_config(Some(Room::rectangular(HALL_W, HALL_H, 0.6)), channel_config);

    let waypoints = [
        Point2::new(3.0, 3.0),
        Point2::new(7.0, 5.5),
        Point2::new(11.0, 4.0),
        Point2::new(14.5, 8.0),
        Point2::new(9.0, 9.5),
    ];

    println!("museum hall {HALL_W} × {HALL_H} m, 4 anchors, 5 waypoints\n");
    println!(
        "{:<10} {:>18} {:>18} {:>10}",
        "waypoint", "true (x, y)", "fix (x, y)", "error"
    );
    let mut total_err = 0.0;
    for (w, &tag_pos) in waypoints.iter().enumerate() {
        let mut sim = Simulator::new(channel.clone(), SimConfig::default(), 100 + w as u64);
        let tag = sim.add_node(NodeConfig::at(tag_pos.x, tag_pos.y));
        let mut responders = Vec::new();
        for (id, &a) in anchors.iter().enumerate() {
            let register = scheme.assign(id as u32)?.register;
            let node = sim.add_node(NodeConfig::at(a.x, a.y).with_pulse_shape(register));
            responders.push((node, id as u32));
        }
        let mut engine = ConcurrentEngine::new(
            tag,
            responders,
            ConcurrentConfig::new(scheme.clone()).with_mpc_guard(),
            200 + w as u64,
        )?;
        sim.run(&mut engine, 1.0);

        let Some(outcome) = engine.outcomes.first() else {
            println!("{w:<10} round failed: {:?}", engine.failed_rounds);
            continue;
        };
        let ranges: Vec<RangeToAnchor> = anchors
            .iter()
            .enumerate()
            .filter_map(|(id, &a)| {
                outcome.estimate_for(id as u32).map(|e| RangeToAnchor {
                    anchor: a,
                    distance_m: e.distance_m,
                })
            })
            .collect();
        if ranges.len() < 3 {
            println!("{w:<10} only {} anchors resolved", ranges.len());
            continue;
        }
        let fix = multilaterate(&ranges)?;
        let err = fix.position.distance_to(tag_pos);
        total_err += err;
        println!(
            "{w:<10} ({:>6.2}, {:>6.2}) m ({:>6.2}, {:>6.2}) m {:>8.2} m",
            tag_pos.x, tag_pos.y, fix.position.x, fix.position.y, err
        );
    }
    println!(
        "\nmean position error: {:.2} m — each fix cost the tag 1 TX + 1 RX \
         (vs {} messages with scheduled TWR)",
        total_err / waypoints.len() as f64,
        2 * anchors.len()
    );
    Ok(())
}
