//! Non-line-of-sight study — the paper's declared future work ("we have
//! neglected the impact of non-line-of-sight situations…").
//!
//! Run with `cargo run --release --example nlos_hallway`.
//!
//! Two responders range concurrently to an initiator in a reflective room
//! while the direct paths are progressively attenuated (a person or cart
//! blocking the corridor). The example shows (i) distance estimates drift
//! late as the obstacle adds excess delay, and (ii) RPM + the
//! earliest-per-slot guard keep identification working even when wall
//! reflections are stronger than the blocked direct paths.

use concurrent_ranging::{CombinedScheme, ConcurrentConfig, ConcurrentEngine, SlotPlan};
use uwb_channel::{ChannelConfig, ChannelModel, Room};
use uwb_netsim::{NodeConfig, SimConfig, Simulator};

fn main() -> Result<(), uwb_error::Error> {
    let truths = [6.0, 12.0];
    println!("two responders at 6 m and 12 m; LOS attenuation sweep\n");
    println!(
        "{:<18} {:>12} {:>12} {:>12}",
        "extra loss [dB]", "d0 est [m]", "d1 est [m]", "note"
    );

    for extra_loss_db in [0.0, 5.0, 10.0, 15.0, 20.0, 25.0] {
        let mut channel_config = ChannelConfig::default();
        if extra_loss_db > 0.0 {
            channel_config = channel_config.with_nlos(extra_loss_db, 0.1 * extra_loss_db);
        }
        let channel =
            ChannelModel::with_config(Some(Room::rectangular(20.0, 8.0, 0.6)), channel_config);
        let scheme = CombinedScheme::new(SlotPlan::new(4)?, 1)?;
        let mut sim = Simulator::new(channel, SimConfig::default(), extra_loss_db as u64 + 3);
        let initiator = sim.add_node(NodeConfig::at(2.0, 4.0));
        let r0 =
            sim.add_node(NodeConfig::at(8.0, 4.0).with_pulse_shape(scheme.assign(0)?.register));
        let r1 =
            sim.add_node(NodeConfig::at(14.0, 4.0).with_pulse_shape(scheme.assign(1)?.register));
        let mut engine = ConcurrentEngine::new(
            initiator,
            vec![(r0, 0), (r1, 1)],
            ConcurrentConfig::new(scheme).with_mpc_guard(),
            extra_loss_db as u64 + 13,
        )?;
        sim.run(&mut engine, 1.0);

        match engine.outcomes.first() {
            Some(o) => {
                let fmt_est = |id: u32| {
                    o.estimate_for(id)
                        .map_or("missed".to_string(), |e| format!("{:.2}", e.distance_m))
                };
                let worst_bias = truths
                    .iter()
                    .enumerate()
                    .filter_map(|(id, t)| o.estimate_for(id as u32).map(|e| e.distance_m - t))
                    .fold(0.0_f64, |acc, b| if b.abs() > acc.abs() { b } else { acc });
                let note = if extra_loss_db == 0.0 {
                    "clear LOS".to_string()
                } else {
                    format!("bias {worst_bias:+.2} m from excess delay")
                };
                println!(
                    "{extra_loss_db:<18} {:>12} {:>12} {:>20}",
                    fmt_est(0),
                    fmt_est(1),
                    note
                );
            }
            None => println!(
                "{extra_loss_db:<18} round failed ({:?})",
                engine
                    .failed_rounds
                    .first()
                    .map(|(_, e)| e.to_string())
                    .unwrap_or_default()
            ),
        }
    }
    println!(
        "\nNLOS biases estimates late (the obstacle adds path delay) — the \
         error the paper's future work targets; identification itself keeps \
         working thanks to RPM slots."
    );
    Ok(())
}
