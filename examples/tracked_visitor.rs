//! Continuous tracking of a moving node — concurrent ranging rounds fused
//! through multilateration and a constant-velocity Kalman filter.
//!
//! Run with `cargo run --release --example tracked_visitor`.
//!
//! A visitor walks a straight line through an exhibition hall at 1.2 m/s.
//! Every 400 ms their tag performs one concurrent ranging round against
//! four wall anchors (one TX + one RX per fix!), multilaterates, and feeds
//! the fix to a [`concurrent_ranging::PositionTracker`]. The tracker
//! smooths the per-round noise and recovers the walking velocity.

use concurrent_ranging::{
    multilaterate, CombinedScheme, ConcurrentConfig, ConcurrentEngine, PositionTracker,
    RangeToAnchor, SlotPlan,
};
use uwb_channel::{ChannelModel, Point2, Room};
use uwb_netsim::{FaultPlan, NodeConfig, SimConfig, Simulator};

fn main() -> Result<(), uwb_error::Error> {
    const HALL_W: f64 = 20.0;
    const HALL_H: f64 = 10.0;
    let anchors = [
        Point2::new(0.5, 0.5),
        Point2::new(HALL_W - 0.5, 0.5),
        Point2::new(HALL_W - 0.5, HALL_H - 0.5),
        Point2::new(0.5, HALL_H - 0.5),
    ];
    let scheme = CombinedScheme::new(SlotPlan::new(4)?, 1)?;
    let channel = ChannelModel::in_room(Room::rectangular(HALL_W, HALL_H, 0.5));

    // The visitor walks from (2, 5) toward (18, 5) at 1.2 m/s; a fix every
    // 400 ms.
    let speed = 1.2;
    let fix_interval = 0.4;
    let mut tracker = PositionTracker::new(0.5, 0.3);

    println!(
        "{:<8} {:>16} {:>16} {:>16} {:>9}",
        "t [s]", "true (x, y)", "raw fix (x, y)", "tracked (x, y)", "err [m]"
    );
    let mut raw_err_sum = 0.0;
    let mut tracked_err_sum = 0.0;
    let mut fixes = 0usize;
    for step in 0..24 {
        let t = step as f64 * fix_interval;
        let truth = Point2::new(2.0 + speed * t, 5.0);

        // One concurrent round at this waypoint. Crowds occasionally
        // shadow a link; the engine's retry watchdog papers over most of
        // it and the Kalman filter coasts through the rest.
        let faults = FaultPlan::none()
            .with_seed(900 + step as u64)
            .with_frame_loss(0.05)?;
        let mut sim = Simulator::new(
            channel.clone(),
            SimConfig::default().with_faults(faults),
            500 + step as u64,
        );
        let tag = sim.add_node(NodeConfig::at(truth.x, truth.y));
        let mut responders = Vec::new();
        for (id, a) in anchors.iter().enumerate() {
            let reg = scheme.assign(id as u32)?.register;
            responders.push((
                sim.add_node(NodeConfig::at(a.x, a.y).with_pulse_shape(reg)),
                id as u32,
            ));
        }
        let mut engine = ConcurrentEngine::new(
            tag,
            responders,
            ConcurrentConfig::new(scheme.clone())
                .with_mpc_guard()
                .with_retries(1),
            700 + step as u64,
        )?;
        sim.run(&mut engine, 1.0);
        let Some(outcome) = engine.outcomes.first() else {
            println!("{t:<8.1} round failed");
            continue;
        };
        let ranges: Vec<RangeToAnchor> = anchors
            .iter()
            .enumerate()
            .filter_map(|(id, &a)| {
                outcome.estimate_for(id as u32).map(|e| RangeToAnchor {
                    anchor: a,
                    distance_m: e.distance_m,
                })
            })
            .collect();
        if ranges.len() < 3 {
            println!("{t:<8.1} only {} anchors resolved", ranges.len());
            continue;
        }
        let fix = multilaterate(&ranges)?;
        tracker.update(fix.position, t);
        let tracked = tracker.state().expect("state after update").position;

        let raw_err = fix.position.distance_to(truth);
        let tracked_err = tracked.distance_to(truth);
        raw_err_sum += raw_err;
        tracked_err_sum += tracked_err;
        fixes += 1;
        println!(
            "{t:<8.1} ({:>6.2}, {:>5.2}) ({:>6.2}, {:>5.2}) ({:>6.2}, {:>5.2}) {tracked_err:>8.2}",
            truth.x, truth.y, fix.position.x, fix.position.y, tracked.x, tracked.y
        );
    }

    let state = tracker.state().expect("tracker has state");
    println!(
        "\nmean error: raw fixes {:.2} m → tracked {:.2} m; estimated velocity ({:.2}, {:.2}) m/s (true: ({speed}, 0.00))",
        raw_err_sum / fixes as f64,
        tracked_err_sum / fixes as f64,
        state.velocity.0,
        state.velocity.1,
    );
    Ok(())
}
