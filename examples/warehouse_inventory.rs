//! Large-population ranging — the scalability story of the paper's
//! Sect. VIII.
//!
//! Run with `cargo run --release --example warehouse_inventory`.
//!
//! A gateway ranges to 20 asset tags spread across a warehouse bay in a
//! single concurrent round, using 8 RPM slots × 3 pulse shapes
//! (capacity 24). The example reports per-tag recovery plus the energy
//! the gateway would have burned doing 20 scheduled TWR exchanges
//! instead.

use concurrent_ranging::{
    CombinedScheme, ConcurrentConfig, ConcurrentEngine, RangingError, SlotPlan,
};
use uwb_channel::{ChannelModel, Point2};
use uwb_netsim::{NodeConfig, SimConfig, Simulator};
use uwb_radio::{EnergyModel, FrameTiming, RadioConfig};

fn main() -> Result<(), RangingError> {
    const N_TAGS: usize = 20;
    let scheme = CombinedScheme::new(SlotPlan::new(7)?, 3)?;
    println!(
        "scheme: {} slots × {} shapes = capacity {} tags, slot spacing {:.0} ns\n",
        scheme.plan().n_slots(),
        scheme.n_shapes(),
        scheme.capacity(),
        scheme.plan().slot_spacing_s() * 1e9
    );

    // Tags on a grid across a 16 × 10 m bay.
    let mut positions = Vec::new();
    for k in 0..N_TAGS {
        let col = (k % 5) as f64;
        let row = (k / 5) as f64;
        positions.push(Point2::new(2.5 + col * 3.2, 1.5 + row * 2.6));
    }

    let mut sim = Simulator::new(ChannelModel::free_space(), SimConfig::default(), 7);
    let gateway = sim.add_node(NodeConfig::at(0.0, 0.0));
    let mut responders = Vec::new();
    for (id, p) in positions.iter().enumerate() {
        let register = scheme.assign(id as u32)?.register;
        let node = sim.add_node(NodeConfig::at(p.x, p.y).with_pulse_shape(register));
        responders.push((node, id as u32));
    }

    let mut engine = ConcurrentEngine::new(
        gateway,
        responders,
        ConcurrentConfig::new(scheme).with_mpc_guard(),
        7,
    )?;
    sim.run(&mut engine, 1.0);

    let outcome = engine.outcomes.first().expect("round completes");
    let mut recovered = 0;
    println!(
        "{:<6} {:>10} {:>10} {:>9}",
        "tag", "estimated", "true", "error"
    );
    for (id, p) in positions.iter().enumerate() {
        let truth = p.distance_to(Point2::new(0.0, 0.0));
        match outcome.estimate_for(id as u32) {
            Some(e) => {
                recovered += 1;
                println!(
                    "{id:<6} {:>8.2} m {:>8.2} m {:>+7.2} m",
                    e.distance_m,
                    truth,
                    e.distance_m - truth
                );
            }
            None => println!("{id:<6} {:>10} {truth:>8.2} m", "missed"),
        }
    }

    // Energy: what the gateway actually spent vs a TWR schedule.
    let model = EnergyModel::dw1000();
    let actual_mj = sim.node_ledger(gateway).total_energy_mj(&model);
    let timing = FrameTiming::new(&RadioConfig::default());
    let twr_round_s = timing.frame_s(concurrent_ranging::INIT_PAYLOAD_BYTES)
        + uwb_radio::PAPER_RESPONSE_DELAY_S
        + timing.frame_s(concurrent_ranging::RESP_PAYLOAD_BYTES);
    let twr_mj = N_TAGS as f64
        * (model.energy_mj(
            uwb_radio::RadioState::Transmit,
            timing.frame_s(concurrent_ranging::INIT_PAYLOAD_BYTES),
        ) + model.energy_mj(
            uwb_radio::RadioState::Receive,
            twr_round_s - timing.frame_s(concurrent_ranging::INIT_PAYLOAD_BYTES),
        ));

    println!(
        "\nrecovered {recovered}/{N_TAGS} tags in ONE round \
         (gateway spent {actual_mj:.3} mJ; a {N_TAGS}-exchange TWR schedule \
         would cost ≈{twr_mj:.3} mJ at the gateway)"
    );
    Ok(())
}
