//! Large-population ranging — the scalability story of the paper's
//! Sect. VIII — under realistic fault conditions.
//!
//! Run with `cargo run --release --example warehouse_inventory`.
//!
//! A gateway ranges to 20 asset tags spread across a warehouse bay using
//! 8 RPM slots × 3 pulse shapes (capacity 24). Unlike a textbook setup,
//! the bay is lossy: 10 % of frames never arrive and tags occasionally
//! sleep through a broadcast. The gateway runs four concurrent rounds
//! with the bounded-retry watchdog enabled and aggregates them in a
//! [`concurrent_ranging::RangingSession`] — partial rounds still
//! contribute, and per-tag availability is reported honestly. The example
//! closes with the energy the gateway would have burned doing the same
//! inventory with scheduled TWR exchanges.

use concurrent_ranging::{
    CombinedScheme, ConcurrentConfig, ConcurrentEngine, RangingSession, SlotPlan,
};
use uwb_channel::{ChannelModel, Point2};
use uwb_netsim::{FaultPlan, NodeConfig, SimConfig, Simulator};
use uwb_radio::{EnergyModel, FrameTiming, RadioConfig};

fn main() -> Result<(), uwb_error::Error> {
    const N_TAGS: usize = 20;
    const ROUNDS: u32 = 4;
    let scheme = CombinedScheme::new(SlotPlan::new(7)?, 3)?;
    println!(
        "scheme: {} slots × {} shapes = capacity {} tags, slot spacing {:.0} ns\n",
        scheme.plan().n_slots(),
        scheme.n_shapes(),
        scheme.capacity(),
        scheme.plan().slot_spacing_s() * 1e9
    );

    // Tags on a grid across a 16 × 10 m bay.
    let mut positions = Vec::new();
    for k in 0..N_TAGS {
        let col = (k % 5) as f64;
        let row = (k / 5) as f64;
        positions.push(Point2::new(2.5 + col * 3.2, 1.5 + row * 2.6));
    }

    // A lossy bay: forklifts shadow links, tags duty-cycle their radios.
    let faults = FaultPlan::none()
        .with_seed(7)
        .with_frame_loss(0.10)?
        .with_responder_dropout(0.05)?;
    let mut sim = Simulator::new(
        ChannelModel::free_space(),
        SimConfig::default().with_faults(faults),
        7,
    );
    let gateway = sim.add_node(NodeConfig::at(0.0, 0.0));
    let mut responders = Vec::new();
    for (id, p) in positions.iter().enumerate() {
        let register = scheme.assign(id as u32)?.register;
        let node = sim.add_node(NodeConfig::at(p.x, p.y).with_pulse_shape(register));
        responders.push((node, id as u32));
    }

    let config = ConcurrentConfig::new(scheme)
        .with_mpc_guard()
        .with_rounds(ROUNDS)
        .with_retries(2);
    let mut engine = ConcurrentEngine::new(gateway, responders, config, 7)?;
    sim.run(&mut engine, 1.0);

    let mut session = RangingSession::new();
    for outcome in &engine.outcomes {
        session.ingest(outcome);
    }
    for (_, error) in &engine.failed_rounds {
        session.ingest_failure(error);
    }

    println!(
        "{:<6} {:>10} {:>10} {:>9} {:>8}",
        "tag", "estimated", "true", "error", "avail"
    );
    let stats = session.responder_stats();
    for (id, p) in positions.iter().enumerate() {
        let truth = p.distance_to(Point2::new(0.0, 0.0));
        match stats.iter().find(|s| s.id == id as u32) {
            Some(s) => println!(
                "{id:<6} {:>8.2} m {:>8.2} m {:>+7.2} m {:>7.0}%",
                s.distance_m,
                truth,
                s.distance_m - truth,
                s.availability * 100.0
            ),
            None => println!("{id:<6} {:>10} {truth:>8.2} m", "missed"),
        }
    }

    let faults = sim.fault_stats();
    println!(
        "\nfaults injected: {} frames lost, {} dropouts — watchdog retried {} time(s), \
         recovered {} round(s); session success rate {:.0}%",
        faults.frames_lost,
        faults.dropouts,
        engine.retries,
        engine.recovered_rounds,
        session.success_rate() * 100.0
    );

    // Energy: what the gateway actually spent vs a TWR schedule of the
    // same depth.
    let model = EnergyModel::dw1000();
    let actual_mj = sim.node_ledger(gateway).total_energy_mj(&model);
    let timing = FrameTiming::new(&RadioConfig::default());
    let twr_round_s = timing.frame_s(concurrent_ranging::INIT_PAYLOAD_BYTES)
        + uwb_radio::PAPER_RESPONSE_DELAY_S
        + timing.frame_s(concurrent_ranging::RESP_PAYLOAD_BYTES);
    let twr_mj = (ROUNDS as usize * N_TAGS) as f64
        * (model.energy_mj(
            uwb_radio::RadioState::Transmit,
            timing.frame_s(concurrent_ranging::INIT_PAYLOAD_BYTES),
        ) + model.energy_mj(
            uwb_radio::RadioState::Receive,
            twr_round_s - timing.frame_s(concurrent_ranging::INIT_PAYLOAD_BYTES),
        ));

    println!(
        "inventoried {}/{N_TAGS} tags over {ROUNDS} lossy rounds \
         (gateway spent {actual_mj:.3} mJ; a {}-exchange TWR schedule \
         would cost ≈{twr_mj:.3} mJ at the gateway)",
        stats.len(),
        ROUNDS as usize * N_TAGS
    );
    Ok(())
}
