//! DSP backends: one detection workload, three kernel implementations.
//!
//! Run with `cargo run --release --example dsp_backends`.
//!
//! A batch of two-response CIRs (the paper's Fig. 7 overlap case) is
//! pushed through `Detector::detect_batch` once per [`DspBackend`]:
//! the bit-exact scalar f64 default, the real-input-FFT f64 path, and
//! the single-precision f32 path. The table shows that every backend
//! recovers the same arrival times to well under the ranging noise
//! floor while the cheaper transforms cut the wall-clock cost — the
//! same comparison the `perfwatch` suite gates in CI.

use concurrent_ranging::detection::{
    Detector, DetectorContext, SearchSubtractConfig, SearchSubtractDetector,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use uwb_channel::{Arrival, CirSynthesizer};
use uwb_dsp::{Complex64, DspBackend};
use uwb_radio::{Channel, Prf, PulseShape, RadioConfig, TcPgDelay};

const BATCH: usize = 16;
const TRUTH_NS: [f64; 2] = [100.0, 101.8];

fn main() -> Result<(), uwb_error::Error> {
    let pulse = PulseShape::from_config(&RadioConfig::default());
    let synth = CirSynthesizer::new(Prf::Mhz64).with_noise_sigma(0.02);
    let mut rng = StdRng::seed_from_u64(7);

    // One arrival set, BATCH independent noise realizations — rendered
    // in a single call so the batch is bit-identical to sequential
    // renders from the same RNG.
    let arrivals: Vec<Arrival> = TRUTH_NS
        .iter()
        .zip([1.0, 0.8])
        .map(|(&delay_ns, amp)| Arrival {
            delay_s: delay_ns * 1e-9,
            amplitude: Complex64::from_polar(amp, 0.05 * delay_ns),
            pulse,
        })
        .collect();
    let sets: Vec<&[Arrival]> = (0..BATCH).map(|_| arrivals.as_slice()).collect();
    let cirs = synth.render_batch(&sets, &mut rng);

    let detector = SearchSubtractDetector::from_registers(
        &[TcPgDelay::DEFAULT],
        Channel::Ch7,
        SearchSubtractConfig {
            capture_diagnostics: false,
            ..SearchSubtractConfig::default()
        },
    )?;

    println!(
        "{BATCH} overlapping-response CIRs, truth at {:.1} ns and {:.1} ns\n",
        TRUTH_NS[0], TRUTH_NS[1]
    );
    println!(
        "{:<8} {:>14} {:>14} {:>12} {:>10}",
        "backend", "first [ns]", "second [ns]", "max err [ps]", "time [ms]"
    );

    let mut reference: Option<Vec<Vec<f64>>> = None;
    for backend in DspBackend::ALL {
        // The backend is pinned per context; `DetectorContext::new()`
        // would instead honor the `UWB_DSP_BACKEND` environment knob
        // (what the experiment binaries' `--dsp-backend` flag sets).
        let mut ctx = DetectorContext::with_backend(backend);
        // Warm the plan caches so the timed pass measures steady state.
        detector.detect_batch(&mut ctx, &cirs, 2)?;

        let start = std::time::Instant::now();
        let outcomes = detector.detect_batch(&mut ctx, &cirs, 2)?;
        let elapsed = start.elapsed();

        let taus: Vec<Vec<f64>> = outcomes
            .iter()
            .map(|o| o.responses.iter().map(|r| r.tau_s * 1e9).collect())
            .collect();
        let max_err_ps = reference
            .get_or_insert_with(|| taus.clone())
            .iter()
            .flatten()
            .zip(taus.iter().flatten())
            .map(|(a, b)| (a - b).abs() * 1e3)
            .fold(0.0f64, f64::max);
        println!(
            "{:<8} {:>14.4} {:>14.4} {:>12.3} {:>10.2}",
            backend.label(),
            taus[0][0],
            taus[0].get(1).copied().unwrap_or(f64::NAN),
            max_err_ps,
            elapsed.as_secs_f64() * 1e3,
        );
    }
    println!("\nmax err is vs the bit-exact f64 backend, across the whole batch");
    Ok(())
}
