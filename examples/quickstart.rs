//! Quickstart: one concurrent ranging round with four responders.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! An initiator broadcasts a single INIT; four responders — each assigned
//! an RPM slot and a pulse shape from its ID — reply simultaneously. The
//! initiator recovers every responder's identity and distance from one
//! channel impulse response.

use concurrent_ranging::{CombinedScheme, ConcurrentConfig, ConcurrentEngine, SlotPlan};
use uwb_channel::ChannelModel;
use uwb_netsim::{NodeConfig, SimConfig, Simulator};

// The unified workspace error: every layer's failures `?` into it.
fn main() -> Result<(), uwb_error::Error> {
    // 4 RPM slots × 2 pulse shapes: up to 8 responders per round.
    let scheme = CombinedScheme::new(SlotPlan::new(4)?, 2)?;

    let mut sim = Simulator::new(ChannelModel::free_space(), SimConfig::default(), 42);
    let initiator = sim.add_node(NodeConfig::at(0.0, 0.0));

    let positions = [(4.0, 1.0), (7.5, -2.0), (2.0, 9.0), (11.0, 4.0)];
    let mut responders = Vec::new();
    for (id, &(x, y)) in positions.iter().enumerate() {
        let assignment = scheme.assign(id as u32)?;
        let node = sim.add_node(NodeConfig::at(x, y).with_pulse_shape(assignment.register));
        responders.push((node, id as u32));
        println!(
            "responder {id}: slot {}, pulse shape {} ({}), position ({x}, {y})",
            assignment.slot, assignment.shape, assignment.register
        );
    }

    let mut engine = ConcurrentEngine::new(
        initiator,
        responders,
        ConcurrentConfig::new(scheme).with_mpc_guard(),
        42,
    )?;
    sim.run(&mut engine, 1.0);

    let outcome = engine
        .outcomes
        .first()
        .expect("the round completes in free space");
    println!(
        "\none round: anchor = responder {}, d_TWR = {:.3} m, {}",
        outcome.anchor_id,
        outcome.d_twr_m,
        if outcome.is_complete() {
            "all responders resolved".to_string()
        } else {
            format!("missing responders: {:?}", outcome.missing_ids())
        }
    );
    println!(
        "{:<12} {:>12} {:>10} {:>8}",
        "responder", "estimated", "true", "error"
    );
    for (id, &(x, y)) in positions.iter().enumerate() {
        let truth = (x * x + y * y).sqrt();
        match outcome.estimate_for(id as u32) {
            Some(e) => println!(
                "{id:<12} {:>10.2} m {:>8.2} m {:>+7.2} m",
                e.distance_m,
                truth,
                e.distance_m - truth
            ),
            None => println!("{id:<12} {:>12} {truth:>8.2} m", "missed"),
        }
    }
    Ok(())
}
