//! End-to-end integration tests spanning every crate: DSP → radio model →
//! channel → network simulation → ranging protocols.

use concurrent_ranging::{
    multilaterate, CombinedScheme, ConcurrentConfig, ConcurrentEngine, RangeToAnchor,
    RangingMessage, SlotPlan, SsTwrEngine,
};
use uwb_channel::{ChannelModel, Point2, Room};
use uwb_dsp::stats;
use uwb_netsim::{ClockModel, NodeConfig, SimConfig, Simulator};

fn free_space(seed: u64) -> Simulator<RangingMessage> {
    Simulator::new(ChannelModel::free_space(), SimConfig::default(), seed)
}

#[test]
fn twr_and_concurrent_agree_on_distances() {
    // The same two-node geometry measured by both protocols must agree
    // within the concurrent scheme's TX-grid error budget.
    let mut sim = free_space(1);
    let a = sim.add_node(NodeConfig::at(0.0, 0.0));
    let b = sim.add_node(NodeConfig::at(8.5, 0.0));
    let mut twr = SsTwrEngine::new(a, b, 20);
    sim.run(&mut twr, 1.0);
    let twr_mean = stats::mean(&twr.distances_m());

    let scheme = CombinedScheme::new(SlotPlan::new(1).unwrap(), 1).unwrap();
    let mut sim2 = free_space(2);
    let a2 = sim2.add_node(NodeConfig::at(0.0, 0.0));
    let b2 = sim2.add_node(NodeConfig::at(8.5, 0.0));
    let mut conc = ConcurrentEngine::new(
        a2,
        vec![(b2, 0)],
        ConcurrentConfig::new(scheme).with_rounds(20),
        2,
    )
    .unwrap();
    sim2.run(&mut conc, 1.0);
    let conc_mean = stats::mean(
        &conc
            .outcomes
            .iter()
            .map(|o| o.d_twr_m)
            .collect::<Vec<f64>>(),
    );

    assert!((twr_mean - 8.5).abs() < 0.05, "TWR {twr_mean}");
    assert!((conc_mean - 8.5).abs() < 0.05, "concurrent {conc_mean}");
    assert!((twr_mean - conc_mean).abs() < 0.05);
}

#[test]
fn full_capacity_round_recovers_all_twelve_ids() {
    // The combined scheme at full capacity: 4 slots × 3 shapes = 12
    // responders, all resolved from one CIR.
    let scheme = CombinedScheme::new(SlotPlan::new(4).unwrap(), 3).unwrap();
    let mut sim = free_space(3);
    let initiator = sim.add_node(NodeConfig::at(0.0, 0.0));
    let mut responders = Vec::new();
    let mut truths = Vec::new();
    for id in 0..12u32 {
        let angle = 0.5 + id as f64 * 0.52;
        let radius = 3.0 + (id as f64) * 0.8;
        let (x, y) = (radius * angle.cos(), radius * angle.sin());
        let node = sim
            .add_node(NodeConfig::at(x, y).with_pulse_shape(scheme.assign(id).unwrap().register));
        responders.push((node, id));
        truths.push(radius);
    }
    let config = ConcurrentConfig::new(scheme).with_mpc_guard();
    let mut engine = ConcurrentEngine::new(initiator, responders, config, 3).unwrap();
    sim.run(&mut engine, 1.0);
    assert_eq!(
        engine.outcomes.len(),
        1,
        "failed: {:?}",
        engine.failed_rounds
    );
    let outcome = &engine.outcomes[0];
    let mut recovered = 0;
    for (id, truth) in truths.iter().enumerate() {
        if let Some(e) = outcome.estimate_for(id as u32) {
            if (e.distance_m - truth).abs() < 1.3 {
                recovered += 1;
            }
        }
    }
    assert!(recovered >= 11, "only {recovered}/12 recovered");
}

#[test]
fn localization_from_single_round_in_room() {
    // Full pipeline: multipath room → concurrent round → ranges →
    // multilateration, position within half a meter.
    let room = Room::rectangular(15.0, 10.0, 0.6);
    let anchors = [
        Point2::new(0.5, 0.5),
        Point2::new(14.5, 0.5),
        Point2::new(14.5, 9.5),
        Point2::new(0.5, 9.5),
    ];
    let tag_pos = Point2::new(6.0, 4.0);
    let scheme = CombinedScheme::new(SlotPlan::new(4).unwrap(), 1).unwrap();

    let mut sim = Simulator::new(ChannelModel::in_room(room), SimConfig::default(), 4);
    let tag = sim.add_node(NodeConfig::at(tag_pos.x, tag_pos.y));
    let mut responders = Vec::new();
    for (id, a) in anchors.iter().enumerate() {
        let node = sim.add_node(
            NodeConfig::at(a.x, a.y).with_pulse_shape(scheme.assign(id as u32).unwrap().register),
        );
        responders.push((node, id as u32));
    }
    let config = ConcurrentConfig::new(scheme).with_mpc_guard();
    let mut engine = ConcurrentEngine::new(tag, responders, config, 4).unwrap();
    sim.run(&mut engine, 1.0);

    let outcome = engine.outcomes.first().expect("round completes");
    let ranges: Vec<RangeToAnchor> = anchors
        .iter()
        .enumerate()
        .filter_map(|(id, &a)| {
            outcome.estimate_for(id as u32).map(|e| RangeToAnchor {
                anchor: a,
                distance_m: e.distance_m,
            })
        })
        .collect();
    assert!(ranges.len() >= 3, "only {} anchors resolved", ranges.len());
    let fix = multilaterate(&ranges).unwrap();
    let err = fix.position.distance_to(tag_pos);
    assert!(err < 0.5, "position error {err} m");
}

#[test]
fn drifting_clocks_do_not_break_identification() {
    // ±5 ppm crystals: distances bias slightly (known SS-TWR drift error)
    // but slot/shape identification is unaffected.
    let scheme = CombinedScheme::new(SlotPlan::new(4).unwrap(), 1).unwrap();
    let mut sim = free_space(5);
    let initiator = sim.add_node(NodeConfig::at(0.0, 0.0).with_clock(ClockModel::new(0.3, 2.0)));
    let r0 = sim.add_node(
        NodeConfig::at(5.0, 0.0)
            .with_clock(ClockModel::new(1.0, -5.0))
            .with_pulse_shape(scheme.assign(0).unwrap().register),
    );
    let r1 = sim.add_node(
        NodeConfig::at(0.0, 9.0)
            .with_clock(ClockModel::new(2.0, 5.0))
            .with_pulse_shape(scheme.assign(1).unwrap().register),
    );
    let config = ConcurrentConfig::new(scheme).with_mpc_guard();
    let mut engine = ConcurrentEngine::new(initiator, vec![(r0, 0), (r1, 1)], config, 5).unwrap();
    sim.run(&mut engine, 1.0);
    let outcome = engine.outcomes.first().expect("round completes");
    // Drift error: ≈ c·5ppm·290µs/2 ≈ 22 cm on the anchor, plus TX grid on
    // the other — identification still exact.
    let e0 = outcome.estimate_for(0).expect("responder 0 identified");
    let e1 = outcome.estimate_for(1).expect("responder 1 identified");
    assert!((e0.distance_m - 5.0).abs() < 1.6, "{}", e0.distance_m);
    assert!((e1.distance_m - 9.0).abs() < 1.6, "{}", e1.distance_m);
}

#[test]
fn out_of_window_responder_fails_gracefully() {
    // A responder beyond the slot budget (very long round-trip) leaks into
    // the next slot: its ID decodes wrongly or not at all, but the round
    // still returns and other responders are unaffected.
    let scheme = CombinedScheme::new(SlotPlan::new(8).unwrap(), 1).unwrap();
    let slot_budget_m = scheme.plan().slot_spacing_s() * uwb_radio::SPEED_OF_LIGHT / 2.0;
    let mut sim = free_space(6);
    let initiator = sim.add_node(NodeConfig::at(0.0, 0.0));
    let near =
        sim.add_node(NodeConfig::at(4.0, 0.0).with_pulse_shape(scheme.assign(0).unwrap().register));
    // Far responder: beyond one slot's round-trip budget relative to the
    // anchor.
    let far_distance = 4.0 + slot_budget_m + 3.0;
    let far = sim.add_node(
        NodeConfig::at(far_distance, 0.0).with_pulse_shape(scheme.assign(1).unwrap().register),
    );
    let config = ConcurrentConfig::new(scheme);
    let mut engine =
        ConcurrentEngine::new(initiator, vec![(near, 0), (far, 1)], config, 6).unwrap();
    sim.run(&mut engine, 1.0);
    let outcome = engine.outcomes.first().expect("round completes");
    // The near responder is solid.
    let near_est = outcome.estimate_for(0).expect("near responder resolved");
    assert!((near_est.distance_m - 4.0).abs() < 0.2);
    // The far responder cannot decode as ID 1 (its delay landed in the
    // wrong slot).
    assert!(outcome.estimate_for(1).is_none());
}

#[test]
fn multiple_rounds_are_consistent() {
    let scheme = CombinedScheme::new(SlotPlan::new(2).unwrap(), 1).unwrap();
    let mut sim = free_space(7);
    let initiator = sim.add_node(NodeConfig::at(0.0, 0.0));
    let r0 = sim.add_node(NodeConfig::at(6.0, 2.0));
    let r1 = sim
        .add_node(NodeConfig::at(3.0, -4.0).with_pulse_shape(scheme.assign(1).unwrap().register));
    let config = ConcurrentConfig::new(scheme).with_rounds(10);
    let mut engine = ConcurrentEngine::new(initiator, vec![(r0, 0), (r1, 1)], config, 7).unwrap();
    sim.run(&mut engine, 1.0);
    assert_eq!(engine.outcomes.len(), 10);
    let d0: Vec<f64> = engine
        .outcomes
        .iter()
        .filter_map(|o| o.estimate_for(0).map(|e| e.distance_m))
        .collect();
    assert!(d0.len() >= 9);
    // Repeatability: per-round estimates cluster tightly.
    assert!(stats::std_dev(&d0) < 0.5, "σ {}", stats::std_dev(&d0));
    // Rounds carry increasing counters.
    for (i, o) in engine.outcomes.iter().enumerate() {
        assert_eq!(o.round as usize, i);
    }
}

#[test]
fn energy_advantage_grows_with_network_size() {
    // The motivating claim: the initiator's energy per full neighborhood
    // measurement is ~constant for concurrent ranging but linear for TWR.
    let model = uwb_radio::EnergyModel::dw1000();
    let mut concurrent_energy = Vec::new();
    for n in [2usize, 6] {
        let scheme = CombinedScheme::new(SlotPlan::new(8).unwrap(), 1).unwrap();
        let mut sim = free_space(8 + n as u64);
        let initiator = sim.add_node(NodeConfig::at(0.0, 0.0));
        let responders: Vec<_> = (0..n)
            .map(|k| {
                let id = k as u32;
                (
                    sim.add_node(
                        NodeConfig::at(3.0 + k as f64, 1.0)
                            .with_pulse_shape(scheme.assign(id).unwrap().register),
                    ),
                    id,
                )
            })
            .collect();
        let mut engine =
            ConcurrentEngine::new(initiator, responders, ConcurrentConfig::new(scheme), 9).unwrap();
        sim.run(&mut engine, 1.0);
        concurrent_energy.push(sim.node_ledger(initiator).total_energy_mj(&model));
    }
    // Tripling the responder count leaves the initiator cost almost flat
    // (one TX + one RX either way).
    let growth = concurrent_energy[1] / concurrent_energy[0];
    assert!(growth < 1.3, "initiator energy grew ×{growth}");
}
